//! Checkpoint/restart integration and the resilient run driver.
//!
//! [`SimCheckpointExt`] wires [`crate::ckpt`] checkpoint sets into
//! `DistributedSim`: every rank writes its own block files, rank 0 gathers
//! the per-block CRCs and writes the manifest last, and restore re-reads a
//! set onto the *current* decomposition — the same or a different rank
//! count, since block files are keyed by global block id.
//!
//! [`run_resilient`] is the production loop the paper's month-long runs
//! imply: run the universe; if a rank dies (detected by the comm layer, not
//! deadlocked), tear the universe down, restore the last *valid* checkpoint
//! set, and continue — optionally on a different rank count. With
//! [`Precision::F64`] checkpoints the recovered run is bit-identical to an
//! uninterrupted one.
//!
//! # Silent-corruption recovery
//!
//! Rank death is not the only failure mode at scale: a [`RecoveryPolicy`]
//! with health scans enabled additionally defends against *silent* state
//! corruption without tearing the universe down. The timeloop's periodic
//! invariant scans (`eutectica_core::health`) produce a cross-rank
//! `HealthReport`; on an unhealthy verdict every rank rolls back in-flight
//! to the newest checkpoint set that restores cleanly **and** itself scans
//! healthy (poisoned sets — written after the corruption — are skipped in
//! descending step order), applies the configured remediation (simplex
//! re-projection, optional dt-reduction for K steps), and keeps running.
//! After [`RecoveryPolicy::max_rollbacks`] in-flight rollbacks the attempt
//! escalates to a full restart via a typed [`RankFailure`]; only when every
//! attempt is exhausted does the driver give up with
//! [`ResilientError::Exhausted`].
//!
//! Checkpoint-write and restore failures are typed per rank (satellite of
//! the same defense): collective votes inside [`SimCheckpointExt`] keep all
//! ranks in lockstep when one rank's I/O fails, a failed write leaves an
//! invalid (manifest-less) set that restores skip, and a corrupt newest set
//! is retried with the *previous* one instead of killing the rank.
//!
//! Checkpoint cadence follows Sec. 3.2: [`CheckpointCadence`] measures the
//! step and checkpoint wall times at runtime and re-plans the write
//! interval through [`crate::checkpoint_interval`] so measured overhead
//! stays within the configured budget. The measurements feed an allreduce,
//! so every rank agrees on the interval and the collective checkpoint
//! writes stay in lockstep.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::rebalance::{plan_shrink, RebalancePolicy};
use eutectica_comm::{
    catch_comm, CommError, CommPanic, FaultPlan, Rank, ReduceOp, Universe, UniverseCfg,
    UniverseError,
};
use eutectica_core::health::{FieldFaultPlan, HealthConfig, HealthMonitor};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};

use crate::ckpt::{self, BlockEntry, CkptError, Manifest, Precision, DEFAULT_BYTE_BUDGET};
use crate::replica::ReplicaStore;

/// Checkpoint-set operations on a distributed simulation.
pub trait SimCheckpointExt {
    /// Collectively write a checkpoint set for the current step under
    /// `root`. Every rank writes its local blocks; rank 0 gathers the
    /// per-block CRCs and writes the manifest last (the set is valid only
    /// once the manifest lands). Returns the bytes this rank wrote.
    ///
    /// Telemetry: span `checkpoint_write` (category `io`), counters
    /// `ckpt/bytes_written`, `ckpt/sets_written`, `ckpt/wall_ns`.
    fn write_checkpoint_set(&self, root: &Path, precision: Precision) -> Result<u64, CkptError>;

    /// Restore fields, time, step and window offset from the set in `dir`.
    /// The set must decompose the same [`DomainSpec`]; the rank count may
    /// differ from the writer's. Ghosts are refreshed collectively, so all
    /// ranks must call this together.
    fn restore_from_set(&mut self, dir: &Path, byte_budget: u64) -> Result<(), CkptError>;
}

impl SimCheckpointExt for DistributedSim<'_> {
    fn write_checkpoint_set(&self, root: &Path, precision: Precision) -> Result<u64, CkptError> {
        let tel = self.telemetry().clone();
        let start = Instant::now();
        let _span = tel.span_cat("checkpoint_write", "io");
        let step = self.step_index() as u64;
        let dir = ckpt::set_dir(root, step);
        // Write local block files without early returns — the collective
        // votes below must run on every rank no matter what fails locally.
        let local: Result<(Vec<BlockEntry>, u64), CkptError> = (|| {
            std::fs::create_dir_all(&dir)?;
            let mut entries = Vec::with_capacity(self.blocks.len());
            let mut bytes_written = 0u64;
            for (li, &id) in self.local_block_ids().iter().enumerate() {
                let e = ckpt::write_block_file(
                    &dir,
                    &self.blocks[li],
                    id as u64,
                    self.time(),
                    precision,
                )?;
                bytes_written += e.file_bytes;
                entries.push(e);
            }
            Ok((entries, bytes_written))
        })();
        let rank = self.comm_rank();
        // Vote 1: every rank's block files landed. A failing peer must not
        // strand the others in the gather; on failure the set simply never
        // gets a manifest and stays invisible to restores.
        let vote = |ok: bool| rank.allreduce_f64(if ok { 1.0 } else { 0.0 }, ReduceOp::Min) == 1.0;
        if !vote(local.is_ok()) {
            return Err(local.err().unwrap_or(CkptError::PeerFailure {
                during: "checkpoint write",
            }));
        }
        let (entries, bytes_written) = local.expect("voted ok");
        // Rank 0 collects every rank's entries and completes the set.
        let mut payload = Vec::with_capacity(entries.len() * 20);
        for e in &entries {
            payload.extend_from_slice(&e.id.to_le_bytes());
            payload.extend_from_slice(&e.file_bytes.to_le_bytes());
            payload.extend_from_slice(&e.crc32.to_le_bytes());
        }
        let manifest_result: Result<(), CkptError> = match rank.gather(0, Bytes::from(payload)) {
            Some(bufs) => {
                let mut all = Vec::new();
                for buf in &bufs {
                    assert!(buf.len() % 20 == 0, "malformed checkpoint entry payload");
                    for chunk in buf.chunks_exact(20) {
                        all.push(BlockEntry {
                            id: u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                            file_bytes: u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                            crc32: u32::from_le_bytes(chunk[16..20].try_into().unwrap()),
                        });
                    }
                }
                all.sort_by_key(|e| e.id);
                ckpt::write_manifest_file(
                    &dir,
                    &Manifest {
                        step,
                        time: self.time(),
                        window_shifts: self.window_shifts() as u64,
                        precision,
                        spec: self.decomp().spec,
                        blocks: all,
                    },
                )
            }
            None => Ok(()),
        };
        // Vote 2 (doubles as the completion barrier): the set is complete
        // for everyone only after the manifest landed, and a failed
        // manifest write surfaces consistently on *all* ranks.
        if !vote(manifest_result.is_ok()) {
            return Err(manifest_result.err().unwrap_or(CkptError::PeerFailure {
                during: "manifest write",
            }));
        }
        tel.counter_add("ckpt/bytes_written", bytes_written);
        tel.counter_add("ckpt/sets_written", 1);
        tel.counter_add("ckpt/wall_ns", start.elapsed().as_nanos() as u64);
        Ok(bytes_written)
    }

    fn restore_from_set(&mut self, dir: &Path, byte_budget: u64) -> Result<(), CkptError> {
        let tel = self.telemetry().clone();
        let start = Instant::now();
        {
            let _span = tel.span_cat("checkpoint_restore", "io");
            // Local reads first, no early return: the vote below must run on
            // every rank so a failing rank cannot strand its peers in the
            // ghost-refresh collective. On error this rank's fields may be
            // partially overwritten — callers are expected to re-restore
            // (e.g. from the previous set) before continuing.
            let local = restore_local(self, dir, byte_budget);
            let ok = self
                .comm_rank()
                .allreduce_f64(if local.is_ok() { 1.0 } else { 0.0 }, ReduceOp::Min)
                == 1.0;
            if !ok {
                return Err(local.err().unwrap_or(CkptError::PeerFailure {
                    during: "checkpoint restore",
                }));
            }
            self.refresh_src_ghosts();
        }
        tel.counter_add("ckpt/restores", 1);
        tel.counter_add("ckpt/restore_wall_ns", start.elapsed().as_nanos() as u64);
        Ok(())
    }
}

/// Rank-local part of [`SimCheckpointExt::restore_from_set`]: manifest read,
/// spec check, block reads and progress reset — everything except the
/// collective ghost refresh.
fn restore_local(
    sim: &mut DistributedSim<'_>,
    dir: &Path,
    byte_budget: u64,
) -> Result<(), CkptError> {
    let manifest = ckpt::read_manifest_file(dir)?;
    if manifest.spec != sim.decomp().spec {
        return Err(CkptError::Incompatible {
            detail: format!(
                "set decomposes {:?}, simulation runs {:?}",
                manifest.spec,
                sim.decomp().spec
            ),
        });
    }
    let ids: Vec<usize> = sim.local_block_ids().to_vec();
    for (li, id) in ids.into_iter().enumerate() {
        let dec = ckpt::read_block_from_set(dir, &manifest, id as u64, byte_budget)?;
        let b = &mut sim.blocks[li];
        if dec.state.dims != b.dims {
            return Err(CkptError::Incompatible {
                detail: format!(
                    "block {id}: checkpoint dims {:?} vs simulation {:?}",
                    dec.state.dims, b.dims
                ),
            });
        }
        // Keep this block's boundary conditions; take fields and the
        // (possibly window-shifted) origin from the file.
        b.origin = dec.state.origin;
        b.phi_src = dec.state.phi_src;
        b.mu_src = dec.state.mu_src;
        b.sync_dst_from_src();
    }
    sim.set_progress(
        manifest.time,
        manifest.step as usize,
        manifest.window_shifts as usize,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Auto-cadence
// ---------------------------------------------------------------------------

/// Measured-overhead checkpoint scheduler (Sec. 3.2).
///
/// Starts with an interval of 1 so the first checkpoint is taken (and
/// timed) immediately; afterwards the interval is re-planned from the
/// allreduced worst-rank step and checkpoint times via
/// [`crate::checkpoint_interval`], keeping the overhead under `budget`
/// uniformly across ranks.
#[derive(Clone, Debug)]
pub struct CheckpointCadence {
    budget: f64,
    step_ema: f64,
    interval: usize,
    last_ckpt_step: usize,
}

impl CheckpointCadence {
    /// New scheduler targeting `overhead_budget` (e.g. 0.01 = 1 %).
    pub fn new(overhead_budget: f64) -> Self {
        assert!(overhead_budget > 0.0);
        Self {
            budget: overhead_budget,
            step_ema: 0.0,
            interval: 1,
            last_ckpt_step: 0,
        }
    }

    /// Fixed-interval scheduler (no measurement; `observe_checkpoint` keeps
    /// the interval unchanged).
    pub fn fixed(every: usize) -> Self {
        assert!(every > 0);
        Self {
            budget: 0.0,
            step_ema: 0.0,
            interval: every,
            last_ckpt_step: 0,
        }
    }

    /// Current write interval in steps.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Record the wall time of one step.
    pub fn observe_step(&mut self, wall: Duration) {
        let s = wall.as_secs_f64();
        self.step_ema = if self.step_ema == 0.0 {
            s
        } else {
            0.7 * self.step_ema + 0.3 * s
        };
    }

    /// Record the wall time of the checkpoint just written at `step` and
    /// re-plan the interval. Collective when auto (allreduces the worst
    /// rank's measurements so all ranks agree on the next interval).
    pub fn observe_checkpoint(&mut self, rank: &Rank, wall: Duration, step: usize) {
        self.last_ckpt_step = step;
        if self.budget <= 0.0 {
            return; // fixed cadence
        }
        let step_max = rank.allreduce_f64(self.step_ema.max(1e-9), ReduceOp::Max);
        let ckpt_max = rank.allreduce_f64(wall.as_secs_f64(), ReduceOp::Max);
        self.interval = crate::checkpoint_interval(step_max, ckpt_max, self.budget);
    }

    /// Should a checkpoint be written after completing `step`?
    pub fn due(&self, step: usize) -> bool {
        step.saturating_sub(self.last_ckpt_step) >= self.interval
    }
}

// ---------------------------------------------------------------------------
// Resilient driver
// ---------------------------------------------------------------------------

/// Checkpoint cadence policy of [`run_resilient`].
#[derive(Clone, Debug)]
pub enum Cadence {
    /// Write every `n` steps.
    EverySteps(usize),
    /// Measure step/checkpoint cost and keep overhead under the budget.
    Auto {
        /// Fraction of runtime allowed for checkpointing (e.g. 0.01).
        overhead_budget: f64,
    },
}

impl Cadence {
    fn scheduler(&self) -> CheckpointCadence {
        match self {
            Cadence::EverySteps(n) => CheckpointCadence::fixed(*n),
            Cadence::Auto { overhead_budget } => CheckpointCadence::new(*overhead_budget),
        }
    }
}

/// Temporary time-step reduction applied after an in-flight rollback.
///
/// Breaks bit-identity with an uninjected run (the recovered trajectory
/// integrates with a different dt for a while), so it is off by default —
/// enable it when corruption correlates with stiffness rather than with
/// radiation-style bit upsets.
#[derive(Clone, Copy, Debug)]
pub struct DtReduction {
    /// Multiply dt by this factor (0 < factor < 1) right after rollback.
    pub factor: f64,
    /// Restore the original dt after this many post-rollback steps.
    pub steps: usize,
}

/// Silent-corruption recovery policy of [`run_resilient`].
#[derive(Clone, Debug, Default)]
pub struct RecoveryPolicy {
    /// Enable periodic field-health scans with this configuration.
    /// `None` disables the entire in-flight recovery path.
    pub health: Option<HealthConfig>,
    /// Field-fault injection plan per attempt (testing); attempts beyond
    /// the end run injection-free. Fire-once semantics: a fault consumed
    /// before a rollback is not re-injected after it.
    pub field_fault_plans: Vec<FieldFaultPlan>,
    /// In-flight rollbacks allowed per attempt before escalating to a full
    /// restart ([`RankFailure::RollbackExhausted`]).
    pub max_rollbacks: usize,
    /// Re-project φ onto the Gibbs simplex after each rollback (a no-op on
    /// valid restored states, so bit-identity is preserved).
    pub project_simplex: bool,
    /// Optional dt-reduction remediation after each rollback.
    pub dt_reduction: Option<DtReduction>,
}

impl RecoveryPolicy {
    /// Recovery with health scans enabled and default remediation
    /// (simplex re-projection, 3 rollbacks per attempt, no dt-reduction).
    pub fn with_health(health: HealthConfig) -> Self {
        Self {
            health: Some(health),
            field_fault_plans: Vec::new(),
            max_rollbacks: 3,
            project_simplex: true,
            dt_reduction: None,
        }
    }
}

/// Where shrink recovery re-sources the lost (and rolled-back) block state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShrinkSource {
    /// Re-read the newest healthy checkpoint set from disk (per-block
    /// `EUTECKP2` files are rank-count-agnostic).
    Disk,
    /// Restore from in-RAM buddy replicas captured at checkpoint cadence —
    /// no disk round-trip (see [`crate::replica`]).
    Buddy,
}

/// Shrink-and-continue policy: survive rank deaths in-flight by fencing the
/// dead rank behind a membership epoch, re-homing its blocks onto the
/// survivors and resuming from the newest consistent state — instead of
/// tearing the universe down for a full restart.
#[derive(Clone, Debug)]
pub struct ShrinkPolicy {
    /// Rank deaths survived in place per attempt; one more escalates with
    /// [`RankFailure::ShrinkExhausted`]. A death *during* recovery burns an
    /// additional unit of this budget.
    pub max_shrinks: usize,
    /// Where lost block state is restored from.
    pub source: ShrinkSource,
}

impl ShrinkPolicy {
    /// Survive one rank death per attempt from the given source.
    pub fn new(source: ShrinkSource) -> Self {
        Self {
            max_shrinks: 1,
            source,
        }
    }

    /// Same policy with a different per-attempt death budget.
    pub fn with_max_shrinks(mut self, n: usize) -> Self {
        self.max_shrinks = n;
        self
    }
}

/// Typed per-rank failure inside a [`run_resilient`] attempt — distinguishes
/// recovery-path failures from a killed rank ([`UniverseError`]).
#[derive(Clone, Debug)]
pub enum RankFailure {
    /// No checkpoint set could be restored (all sets corrupt, poisoned, or
    /// unreadable).
    Restore {
        /// Human-readable cause chain.
        detail: String,
    },
    /// The in-flight rollback budget was exhausted at `step`.
    RollbackExhausted {
        /// Rollbacks consumed this attempt.
        rollbacks: usize,
        /// Step at which the budget ran out.
        step: usize,
        /// The unhealthy report that triggered the final rollback.
        detail: String,
    },
    /// Corruption was detected but no checkpoint set exists to roll back to.
    NoRollbackTarget {
        /// Step at which corruption was detected.
        step: usize,
        /// The unhealthy report.
        detail: String,
    },
    /// The shrink budget ([`ShrinkPolicy::max_shrinks`]) was exhausted —
    /// one rank death too many, or a second death inside the recovery
    /// window with no budget left.
    ShrinkExhausted {
        /// Deaths this attempt tried to absorb (including the fatal one).
        shrinks: usize,
        /// Step at which the budget ran out.
        step: usize,
        /// The communication failure that triggered the final shrink.
        detail: String,
    },
    /// Shrink recovery could not rebuild a consistent resumable state
    /// (no membership change behind the failure, no restorable checkpoint,
    /// or lost buddy frames).
    ShrinkRecovery {
        /// Step at which recovery gave up.
        step: usize,
        /// Human-readable cause.
        detail: String,
    },
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Restore { detail } => write!(f, "restore failed: {detail}"),
            RankFailure::RollbackExhausted {
                rollbacks,
                step,
                detail,
            } => write!(
                f,
                "rollback budget exhausted ({rollbacks} rollbacks) at step {step}: {detail}"
            ),
            RankFailure::NoRollbackTarget { step, detail } => {
                write!(f, "no rollback target at step {step}: {detail}")
            }
            RankFailure::ShrinkExhausted {
                shrinks,
                step,
                detail,
            } => write!(
                f,
                "shrink budget exhausted ({shrinks} deaths) at step {step}: {detail}"
            ),
            RankFailure::ShrinkRecovery { step, detail } => {
                write!(f, "shrink recovery failed at step {step}: {detail}")
            }
        }
    }
}

/// Why one [`run_resilient`] attempt failed.
#[derive(Debug)]
pub enum AttemptFailure {
    /// The universe itself died (rank kill, comm timeout, rank panic).
    Universe(UniverseError),
    /// All ranks survived but at least one hit a typed recovery failure.
    Ranks(Vec<RankFailure>),
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::Universe(e) => write!(f, "universe failure: {e}"),
            AttemptFailure::Ranks(rs) => {
                write!(f, "{} rank(s) failed", rs.len())?;
                if let Some(first) = rs.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
        }
    }
}

/// Options of [`run_resilient`].
#[derive(Clone, Debug)]
pub struct ResilientOpts {
    /// Directory holding the checkpoint sets.
    pub ckpt_root: PathBuf,
    /// Checkpoint precision ([`Precision::F64`] for bit-identical resume).
    pub precision: Precision,
    /// Checkpoint cadence.
    pub cadence: Cadence,
    /// Rank count per attempt; attempts beyond the end reuse the last entry
    /// (restore re-decomposes, so counts may differ between attempts).
    pub ranks: Vec<usize>,
    /// Fault plan per attempt; attempts beyond the end run fault-free.
    /// (A kill re-fires forever if its plan is reused after restart, so
    /// plans are per-attempt by construction.)
    pub fault_plans: Vec<FaultPlan>,
    /// Give up after this many attempts.
    pub max_attempts: usize,
    /// Per-operation comm timeout (bounds failure-detection latency).
    pub op_timeout: Duration,
    /// Byte budget for checkpoint-header validation on restore.
    pub byte_budget: u64,
    /// Silent-corruption defense (health scans, in-flight rollback).
    pub recovery: RecoveryPolicy,
    /// Keep only the newest `k` valid checkpoint sets on disk (rank 0
    /// prunes after each successful write). `None` retains everything.
    pub retain_sets: Option<usize>,
    /// Intra-rank sweep/scan threads per rank (PR 3 hybrid layer).
    pub threads: usize,
    /// Dynamic load rebalancing policy, attached after init/restore on
    /// every attempt. Composes with rollback: a restore lands the fields
    /// onto whatever placement the rebalancer has migrated the blocks to.
    pub rebalance: Option<RebalancePolicy>,
    /// Shrink-and-continue rank-failure survival. `None` keeps the classic
    /// behavior: a rank death tears the attempt down and the next attempt
    /// restarts from the newest checkpoint.
    pub shrink: Option<ShrinkPolicy>,
}

impl ResilientOpts {
    /// Sensible defaults: F64 checkpoints under `ckpt_root`, every 10
    /// steps, single-rank, single-thread, no faults, no health scans,
    /// unlimited retention.
    pub fn new(ckpt_root: PathBuf) -> Self {
        Self {
            ckpt_root,
            precision: Precision::F64,
            cadence: Cadence::EverySteps(10),
            ranks: vec![1],
            fault_plans: Vec::new(),
            max_attempts: 3,
            op_timeout: Duration::from_secs(300),
            byte_budget: DEFAULT_BYTE_BUDGET,
            recovery: RecoveryPolicy::default(),
            retain_sets: None,
            threads: 1,
            rebalance: None,
            shrink: None,
        }
    }
}

/// Result of a successful [`run_resilient`].
#[derive(Debug)]
pub struct ResilientOutcome {
    /// Final block states in global block-id order.
    pub blocks: Vec<BlockState>,
    /// Final simulation time.
    pub time: f64,
    /// Attempts used (1 = no failure).
    pub attempts: usize,
    /// The attempt failures that forced restarts, in order.
    pub failures: Vec<AttemptFailure>,
    /// In-flight rollbacks consumed during the successful attempt
    /// (max over ranks; ranks agree when health scans are collective).
    pub rollbacks: usize,
    /// Poisoned/corrupt checkpoint sets skipped while searching for a
    /// rollback or resume target during the successful attempt.
    pub restore_skips: usize,
    /// Rank deaths absorbed in-flight (membership shrinks) during the
    /// successful attempt.
    pub shrinks: usize,
    /// Original rank ids still alive at the end of the successful attempt.
    pub survivors: Vec<usize>,
    /// Aggregate cost of the shrink recoveries in the successful attempt
    /// (all zero when no shrink happened).
    pub shrink_cost: ShrinkCost,
}

/// Aggregate cost of the shrink recoveries absorbed by a successful
/// attempt — the numbers behind a figure binary's rank-0 summary line.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkCost {
    /// Blocks re-homed off dead ranks. The plan is replicated, so every
    /// survivor reports the same count (aggregated as max over ranks).
    pub blocks_rehomed: u64,
    /// Buddy-replica frame bytes shipped over the wire during restores,
    /// summed over survivors (zero for disk-sourced recoveries).
    pub bytes_moved: u64,
    /// Wall-clock spent inside recovery (max over survivors).
    pub recovery_secs: f64,
}

/// Failure of [`run_resilient`].
#[derive(Debug)]
pub enum ResilientError {
    /// Every attempt died; the recorded failures are in order.
    Exhausted {
        /// Attempts made.
        attempts: usize,
        /// Failure per attempt.
        failures: Vec<AttemptFailure>,
    },
    /// A checkpoint-set scan failed outside the universe.
    Ckpt(CkptError),
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Exhausted { attempts, failures } => {
                write!(f, "all {attempts} attempts failed")?;
                if let Some(last) = failures.last() {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
            ResilientError::Ckpt(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

impl From<CkptError> for ResilientError {
    fn from(e: CkptError) -> Self {
        ResilientError::Ckpt(e)
    }
}

/// Outcome of `restore_best`: either a set was restored or none exist yet.
enum RestoreBest {
    /// Restored the set written at this step.
    Restored(u64),
    /// The root holds no checkpoint sets at all (fresh start).
    NoSets,
}

/// Restore the newest checkpoint set that restores cleanly and (when
/// `validate`) itself scans healthy, skipping poisoned or corrupt sets in
/// descending step order. Collective: the restore votes and the validation
/// scan allreduces keep every rank descending in lockstep, so all ranks
/// agree on the chosen set (and on failure).
fn restore_best(
    sim: &mut DistributedSim<'_>,
    root: &Path,
    budget: u64,
    validate: bool,
    skips: &mut usize,
) -> Result<RestoreBest, RankFailure> {
    let mut limit: Option<u64> = None;
    let mut saw_any = false;
    loop {
        let found = ckpt::find_latest_checkpoint_at_or_below(root, limit).map_err(|e| {
            RankFailure::Restore {
                detail: format!("checkpoint scan failed: {e}"),
            }
        })?;
        let Some((step, dir)) = found else {
            return if saw_any {
                Err(RankFailure::Restore {
                    detail: "no restorable checkpoint set left".into(),
                })
            } else {
                Ok(RestoreBest::NoSets)
            };
        };
        saw_any = true;
        match sim.restore_from_set(&dir, budget) {
            Ok(()) => {
                if validate {
                    if let Some(report) = sim.health_scan_now() {
                        if !report.is_healthy() {
                            *skips += 1;
                            sim.telemetry().counter_add("health/restore_skips", 1);
                            if step == 0 {
                                return Err(RankFailure::Restore {
                                    detail: format!(
                                        "every checkpoint set is poisoned (step 0: {})",
                                        report.describe()
                                    ),
                                });
                            }
                            limit = Some(step - 1);
                            continue;
                        }
                    }
                }
                return Ok(RestoreBest::Restored(step));
            }
            Err(e) => {
                *skips += 1;
                sim.telemetry().counter_add("health/restore_skips", 1);
                if step == 0 {
                    return Err(RankFailure::Restore {
                        detail: format!("step-0 set failed to restore: {e}"),
                    });
                }
                limit = Some(step - 1);
            }
        }
    }
}

/// Per-rank result of one successful attempt.
struct RankOutcome {
    time: f64,
    blocks: Vec<(usize, BlockState)>,
    rollbacks: usize,
    restore_skips: usize,
    shrinks: usize,
    cost: ShrinkCost,
}

/// Shrink recovery: fence the dead rank(s) behind a new membership epoch,
/// re-home their blocks onto the survivors with the migration-minimizing
/// planner, and restore a consistent state from disk or buddy replicas.
///
/// Comm failures inside this routine (a *second* death mid-recovery) panic
/// through the comm layer — the caller runs it under [`catch_comm`] and
/// retries against the new, larger dead set.
#[allow(clippy::too_many_arguments)]
fn recover_and_rehome(
    sim: &mut DistributedSim<'_>,
    replica: Option<&ReplicaStore>,
    source: ShrinkSource,
    root: &Path,
    budget: u64,
    validate: bool,
    restore_skips: &mut usize,
    trigger: &CommError,
) -> Result<(), RankFailure> {
    let tel = sim.telemetry().clone();
    let recovery_start = Instant::now();
    let _span = tel.span_cat("shrink_recovery", "recovery");
    let step = sim.step_index();
    // 1. Membership round: agree on the survivor set, install the next
    // epoch, fence stale pre-death messages.
    let change = match sim.comm_rank().recover_membership() {
        Ok(Some(c)) => c,
        Ok(None) => {
            // The failure was not a death (e.g. a timeout with every peer
            // alive) — there is nothing to shrink away from.
            return Err(RankFailure::ShrinkRecovery {
                step,
                detail: format!("comm failure without a membership change: {trigger}"),
            });
        }
        Err(e) => {
            // A death raced the round; re-raise through the comm panic so
            // the caller's catch_comm retries with the larger dead set.
            std::panic::panic_any(CommPanic {
                rank: sim.comm_rank().rank(),
                err: e,
            })
        }
    };
    tel.set_epoch(change.epoch);
    tel.gauge_set("membership/epoch", change.epoch as f64);
    tel.counter_add("shrink/ranks_lost", change.newly_dead.len() as u64);
    // 2. Agree on the pre-death placement. A death mid-migration can leave
    // survivor views divergent (some applied the migration epoch, some
    // aborted first); the fields are fully restored below anyway, so the
    // coordinator's view is as good as any — it just has to be *shared*.
    let current: Vec<usize> = {
        let rank = sim.comm_rank();
        let mine: Vec<u8> = sim
            .placement()
            .iter()
            .flat_map(|&r| (r as u32).to_le_bytes())
            .collect();
        rank.broadcast(change.alive[0], Bytes::from(mine))
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect()
    };
    // 3. Re-home the dead ranks' blocks. Weights come from the descriptors
    // (deterministic and replicated), so every survivor computes the same
    // plan with no extra coordination.
    let weights: Vec<f64> = (0..current.len())
        .map(|id| {
            let d = sim.decomp().block(id).dims(0);
            (d.nx * d.ny * d.nz) as f64
        })
        .collect();
    let plan = plan_shrink(&weights, &current, &change.alive);
    let rehomed = plan.moves.len();
    sim.adopt_placement(plan.placement);
    // 4. Restore a consistent global state at the shrunken rank count.
    match source {
        ShrinkSource::Disk => match restore_best(sim, root, budget, validate, restore_skips)? {
            RestoreBest::Restored(s) => {
                sim.telemetry().gauge_set("shrink/restored_step", s as f64);
            }
            RestoreBest::NoSets => {
                return Err(RankFailure::ShrinkRecovery {
                    step,
                    detail: "no checkpoint set to re-home from".into(),
                });
            }
        },
        ShrinkSource::Buddy => {
            let rep = replica.expect("buddy shrink source allocates a replica store");
            match rep.restore(sim) {
                Ok(r) => {
                    tel.counter_add("shrink/replica_bytes_moved", r.bytes_moved);
                    tel.gauge_set("shrink/restored_step", r.step as f64);
                }
                Err(e) => {
                    return Err(RankFailure::ShrinkRecovery {
                        step,
                        detail: format!("buddy restore failed: {e}"),
                    });
                }
            }
        }
    }
    tel.counter_add("shrink/blocks_rehomed", rehomed as u64);
    tel.counter_add(
        "shrink/recovery_wall_ns",
        recovery_start.elapsed().as_nanos() as u64,
    );
    Ok(())
}

/// Run `target_steps` of a distributed simulation to completion despite
/// rank failures *and* silent state corruption: each attempt resumes from
/// the newest restorable checkpoint set (or initializes with `init` when
/// none exists) and writes checkpoints at the configured cadence. A rank
/// death tears the universe down and triggers the next attempt — possibly
/// on a different rank count. A failed health scan (see
/// [`RecoveryPolicy`]) instead rolls back in-flight: the newest set that
/// restores cleanly and scans healthy is re-loaded, remediation is applied,
/// and the run continues without universe teardown; only an exhausted
/// rollback budget escalates to a full restart via a typed [`RankFailure`].
///
/// Each rank announces its step index to the fault-injection layer via
/// `fault_step`, so a [`FaultPlan::kill`] at step *k* fires exactly when
/// step *k* is about to run; [`RecoveryPolicy::field_fault_plans`] inject
/// field corruption the same way, keyed by attempt.
pub fn run_resilient<F>(
    params: ModelParams,
    spec: DomainSpec,
    cfg: KernelConfig,
    overlap: OverlapOptions,
    target_steps: usize,
    opts: ResilientOpts,
    init: F,
) -> Result<ResilientOutcome, ResilientError>
where
    F: Fn(&mut BlockState) + Send + Sync + 'static,
{
    assert!(opts.max_attempts > 0 && !opts.ranks.is_empty());
    let params = Arc::new(params);
    let init = Arc::new(init);
    let nb_total = spec.num_blocks();
    let mut failures: Vec<AttemptFailure> = Vec::new();

    for attempt in 0..opts.max_attempts {
        let n_ranks = *opts
            .ranks
            .get(attempt)
            .unwrap_or_else(|| opts.ranks.last().unwrap());

        let mut ucfg = UniverseCfg::with_timeout(opts.op_timeout);
        if let Some(plan) = opts.fault_plans.get(attempt) {
            ucfg = ucfg.with_faults(plan.clone());
        }
        if opts.shrink.is_some() {
            // Fail fast: a survivor blocked on a live-but-stuck peer aborts
            // on *any* unfenced death, so the whole survivor set converges
            // on the membership round instead of waiting out the op timeout.
            ucfg = ucfg.with_fail_fast();
        }

        let params = Arc::clone(&params);
        let init = Arc::clone(&init);
        let root = opts.ckpt_root.clone();
        let precision = opts.precision;
        let budget = opts.byte_budget;
        let cadence = opts.cadence.clone();
        let recovery = opts.recovery.clone();
        let field_plan = recovery
            .field_fault_plans
            .get(attempt)
            .cloned()
            .unwrap_or_default();
        let retain = opts.retain_sets;
        let threads = opts.threads;
        let rebalance = opts.rebalance.clone();
        let shrink_cfg = opts.shrink.clone();

        type RankResult = Result<RankOutcome, RankFailure>;
        let rank_main = move |rank: Rank| -> RankResult {
            let mut sim = DistributedSim::new(
                &rank,
                (*params).clone(),
                Decomposition::new(spec),
                cfg,
                overlap,
            );
            sim.set_threads(threads);
            let validate = recovery.health.is_some();
            if let Some(hc) = recovery.health {
                sim.set_health_monitor(Some(
                    HealthMonitor::new(hc).with_faults(field_plan.clone()),
                ));
            }
            let mut restore_skips = 0usize;
            match restore_best(&mut sim, &root, budget, validate, &mut restore_skips)? {
                RestoreBest::Restored(step) => {
                    sim.telemetry().gauge_set("ckpt/resumed_step", step as f64);
                }
                RestoreBest::NoSets => sim.init_blocks(|b| init(b)),
            }
            // Attach after init/restore: the policy's cold-start priors
            // classify the actual block contents.
            sim.set_rebalance_policy(rebalance.clone());
            let mut sched = cadence.scheduler();
            let mut rollbacks = 0usize;
            let mut shrinks = 0usize;
            let mut dt_restore: Option<(usize, f64)> = None;
            let mut replica = match &shrink_cfg {
                Some(sp) if sp.source == ShrinkSource::Buddy => Some(ReplicaStore::new(budget)),
                _ => None,
            };
            let mut pending_failure: Option<CommError> = None;
            while sim.step_index() < target_steps {
                if let Some(err) = pending_failure.take() {
                    let sp = shrink_cfg
                        .as_ref()
                        .expect("comm failures are only caught in shrink mode");
                    shrinks += 1;
                    sim.telemetry().counter_add("shrink/deaths_detected", 1);
                    if shrinks > sp.max_shrinks {
                        return Err(RankFailure::ShrinkExhausted {
                            shrinks,
                            step: sim.step_index(),
                            detail: err.to_string(),
                        });
                    }
                    match catch_comm(|| {
                        recover_and_rehome(
                            &mut sim,
                            replica.as_ref(),
                            sp.source,
                            &root,
                            budget,
                            validate,
                            &mut restore_skips,
                            &err,
                        )
                    }) {
                        Ok(Ok(())) => {
                            // Recovered: re-attach the rebalancer onto
                            // the adopted placement, like after any
                            // init/restore.
                            sim.set_rebalance_policy(rebalance.clone());
                            sim.telemetry().counter_add("shrink/recoveries", 1);
                        }
                        Ok(Err(rf)) => return Err(rf),
                        // Another death mid-recovery: loop back, burn
                        // another unit of the shrink budget, retry the
                        // membership round against the larger dead set.
                        Err(e2) => pending_failure = Some(e2),
                    }
                    continue;
                }
                let one_step = || -> Result<(), RankFailure> {
                    if let Some((until, dt0)) = dt_restore {
                        if sim.step_index() >= until {
                            sim.params.dt = dt0;
                            dt_restore = None;
                        }
                    }
                    rank.fault_step(sim.step_index() as u64);
                    let t0 = Instant::now();
                    sim.step();
                    sched.observe_step(t0.elapsed());
                    if let Some(report) = sim.take_unhealthy_report() {
                        // Unhealthy verdicts come from an allreduce, so
                        // every rank takes this branch at the same step
                        // and the rollback collectives stay in lockstep.
                        rollbacks += 1;
                        sim.telemetry().counter_add("health/rollbacks", 1);
                        let detail = report.describe();
                        if rollbacks > recovery.max_rollbacks {
                            return Err(RankFailure::RollbackExhausted {
                                rollbacks,
                                step: report.step,
                                detail,
                            });
                        }
                        match restore_best(&mut sim, &root, budget, validate, &mut restore_skips)? {
                            RestoreBest::Restored(step) => {
                                sim.telemetry()
                                    .gauge_set("health/rollback_to_step", step as f64);
                            }
                            RestoreBest::NoSets => {
                                return Err(RankFailure::NoRollbackTarget {
                                    step: report.step,
                                    detail,
                                });
                            }
                        }
                        if recovery.project_simplex {
                            let tol = recovery
                                .health
                                .as_ref()
                                .map_or(eutectica_core::health::DEFAULT_SIMPLEX_TOL, |h| {
                                    h.simplex_tol
                                });
                            sim.project_phi_to_simplex(tol);
                        }
                        if let Some(dr) = recovery.dt_reduction {
                            if dt_restore.is_none() {
                                dt_restore = Some((sim.step_index() + dr.steps, sim.params.dt));
                            }
                            sim.params.dt *= dr.factor;
                        }
                        return Ok(());
                    }
                    if sim.step_index() < target_steps && sched.due(sim.step_index()) {
                        let t0 = Instant::now();
                        match sim.write_checkpoint_set(&root, precision) {
                            Ok(_) => {
                                sched.observe_checkpoint(&rank, t0.elapsed(), sim.step_index());
                                if let (Some(keep), 0) = (retain, rank.rank()) {
                                    // Collectives serialize rank 0 against
                                    // restores, so pruning cannot race a
                                    // set being read.
                                    if let Ok(n) = ckpt::prune_checkpoint_sets(&root, keep, None) {
                                        sim.telemetry().counter_add("ckpt/sets_pruned", n as u64);
                                    }
                                }
                                if let Some(rep) = replica.as_mut() {
                                    // Mirror the just-checkpointed state
                                    // into buddy RAM so a shrink can
                                    // restore it without touching disk.
                                    rep.capture(&sim);
                                    sim.telemetry().counter_add("replica/captures", 1);
                                    sim.telemetry()
                                        .gauge_set("replica/bytes_held", rep.bytes_held() as f64);
                                }
                            }
                            Err(_) => {
                                // The votes made this error consistent
                                // across ranks and the set has no
                                // manifest, so it is invisible to
                                // restores. Keep running — the scheduler
                                // stays due and retries next step.
                                sim.telemetry().counter_add("ckpt/write_failures", 1);
                            }
                        }
                    }
                    Ok(())
                };
                match catch_comm(one_step) {
                    Ok(Ok(())) => {}
                    Ok(Err(rf)) => return Err(rf),
                    Err(err) => match &shrink_cfg {
                        Some(_) => pending_failure = Some(err),
                        // Classic mode keeps the PR 2 contract: the comm
                        // failure unwinds this rank and the attempt tears
                        // down for a full restart.
                        None => std::panic::panic_any(CommPanic {
                            rank: rank.rank(),
                            err,
                        }),
                    },
                }
            }
            let snap = sim.telemetry().metrics_snapshot();
            let ctr = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
            let cost = ShrinkCost {
                blocks_rehomed: ctr("shrink/blocks_rehomed"),
                bytes_moved: ctr("shrink/replica_bytes_moved"),
                recovery_secs: ctr("shrink/recovery_wall_ns") as f64 / 1e9,
            };
            let ids = sim.local_block_ids().to_vec();
            let blocks = std::mem::take(&mut sim.blocks);
            Ok(RankOutcome {
                time: sim.time(),
                blocks: ids.into_iter().zip(blocks).collect(),
                rollbacks,
                restore_skips,
                shrinks,
                cost,
            })
        };

        if opts.shrink.is_some() {
            // Shrink mode: deaths are survivable, so run under the
            // surviving harness and accept an attempt where every block is
            // accounted for by the survivors.
            let out = Universe::run_surviving(n_ranks, ucfg, rank_main);
            let mut oks: Vec<(usize, RankOutcome)> = Vec::new();
            let mut errs: Vec<RankFailure> = Vec::new();
            for (r, res) in out.results.into_iter().enumerate() {
                match res {
                    Some(Ok(o)) => oks.push((r, o)),
                    Some(Err(e)) => errs.push(e),
                    // A dead rank simply has no result; its blocks must
                    // resurface on a survivor for the coverage check below.
                    None => {}
                }
            }
            let mut ids: Vec<usize> = oks
                .iter()
                .flat_map(|(_, o)| o.blocks.iter().map(|(id, _)| *id))
                .collect();
            ids.sort_unstable();
            let covered = ids.iter().copied().eq(0..nb_total);
            if errs.is_empty() && covered && !oks.is_empty() {
                let time = oks[0].1.time;
                let rollbacks = oks.iter().map(|(_, o)| o.rollbacks).max().unwrap_or(0);
                let restore_skips = oks.iter().map(|(_, o)| o.restore_skips).max().unwrap_or(0);
                let shrinks = oks.iter().map(|(_, o)| o.shrinks).max().unwrap_or(0);
                let survivors: Vec<usize> = oks.iter().map(|(r, _)| *r).collect();
                let shrink_cost = ShrinkCost {
                    blocks_rehomed: oks
                        .iter()
                        .map(|(_, o)| o.cost.blocks_rehomed)
                        .max()
                        .unwrap_or(0),
                    bytes_moved: oks.iter().map(|(_, o)| o.cost.bytes_moved).sum(),
                    recovery_secs: oks
                        .iter()
                        .map(|(_, o)| o.cost.recovery_secs)
                        .fold(0.0, f64::max),
                };
                let mut tagged: Vec<(usize, BlockState)> =
                    oks.into_iter().flat_map(|(_, o)| o.blocks).collect();
                tagged.sort_by_key(|(id, _)| *id);
                return Ok(ResilientOutcome {
                    blocks: tagged.into_iter().map(|(_, b)| b).collect(),
                    time,
                    attempts: attempt + 1,
                    failures,
                    rollbacks,
                    restore_skips,
                    shrinks,
                    survivors,
                    shrink_cost,
                });
            }
            if errs.is_empty() {
                failures.push(AttemptFailure::Universe(UniverseError { dead: out.dead }));
            } else {
                failures.push(AttemptFailure::Ranks(errs));
            }
        } else {
            let run: Result<Vec<RankResult>, UniverseError> =
                Universe::run_checked(n_ranks, ucfg, rank_main);
            match run {
                Ok(per_rank) => {
                    let mut oks: Vec<RankOutcome> = Vec::new();
                    let mut errs: Vec<RankFailure> = Vec::new();
                    for r in per_rank {
                        match r {
                            Ok(o) => oks.push(o),
                            Err(e) => errs.push(e),
                        }
                    }
                    if errs.is_empty() {
                        let time = oks[0].time;
                        let rollbacks = oks.iter().map(|o| o.rollbacks).max().unwrap_or(0);
                        let restore_skips = oks.iter().map(|o| o.restore_skips).max().unwrap_or(0);
                        let shrinks = oks.iter().map(|o| o.shrinks).max().unwrap_or(0);
                        let mut tagged: Vec<(usize, BlockState)> =
                            oks.into_iter().flat_map(|o| o.blocks).collect();
                        tagged.sort_by_key(|(id, _)| *id);
                        return Ok(ResilientOutcome {
                            blocks: tagged.into_iter().map(|(_, b)| b).collect(),
                            time,
                            attempts: attempt + 1,
                            failures,
                            rollbacks,
                            restore_skips,
                            shrinks,
                            survivors: (0..n_ranks).collect(),
                            shrink_cost: ShrinkCost::default(),
                        });
                    }
                    failures.push(AttemptFailure::Ranks(errs));
                }
                Err(e) => failures.push(AttemptFailure::Universe(e)),
            }
        }
    }
    Err(ResilientError::Exhausted {
        attempts: opts.max_attempts,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Power-of-two durations keep every EMA and interval computation exact
    // in binary floating point, so the planned intervals can be asserted
    // without wall-clock slack.

    #[test]
    fn auto_cadence_interval_follows_measured_costs() {
        let out = Universe::run(1, |rank| {
            let mut c = CheckpointCadence::new(0.25);
            assert_eq!(c.interval(), 1, "first checkpoint is the probe");
            c.observe_step(Duration::from_secs_f64(1.0 / 64.0));
            c.observe_checkpoint(&rank, Duration::from_secs_f64(0.25), 1);
            // ckpt / (step * budget) = 0.25 / (1/64 * 0.25) = 64.
            assert_eq!(c.interval(), 64);
            assert!(!c.due(64));
            assert!(c.due(65));
            // Cheaper checkpoints tighten the interval.
            c.observe_checkpoint(&rank, Duration::from_secs_f64(1.0 / 16.0), 65);
            assert_eq!(c.interval(), 16);
            assert!(c.due(81));
            true
        });
        assert!(out[0]);
    }

    #[test]
    fn auto_cadence_agrees_across_ranks() {
        // Ranks measure different step costs; the allreduced worst rank
        // defines a single interval for everyone, keeping the collective
        // checkpoint writes in lockstep.
        let intervals = Universe::run(2, |rank| {
            let mut c = CheckpointCadence::new(0.25);
            let step = if rank.rank() == 0 {
                1.0 / 64.0
            } else {
                1.0 / 32.0
            };
            c.observe_step(Duration::from_secs_f64(step));
            c.observe_checkpoint(&rank, Duration::from_secs_f64(0.25), 1);
            c.interval()
        });
        assert_eq!(intervals, vec![32, 32]);
    }

    #[test]
    fn fixed_cadence_never_replans() {
        Universe::run(1, |rank| {
            let mut c = CheckpointCadence::fixed(7);
            c.observe_step(Duration::from_secs(1));
            c.observe_checkpoint(&rank, Duration::from_secs(30), 7);
            assert_eq!(c.interval(), 7);
            assert!(!c.due(13));
            assert!(c.due(14));
        });
    }
}
