//! Checkpoint/restart integration and the resilient run driver.
//!
//! [`SimCheckpointExt`] wires [`crate::ckpt`] checkpoint sets into
//! `DistributedSim`: every rank writes its own block files, rank 0 gathers
//! the per-block CRCs and writes the manifest last, and restore re-reads a
//! set onto the *current* decomposition — the same or a different rank
//! count, since block files are keyed by global block id.
//!
//! [`run_resilient`] is the production loop the paper's month-long runs
//! imply: run the universe; if a rank dies (detected by the comm layer, not
//! deadlocked), tear the universe down, restore the last *valid* checkpoint
//! set, and continue — optionally on a different rank count. With
//! [`Precision::F64`] checkpoints the recovered run is bit-identical to an
//! uninterrupted one.
//!
//! Checkpoint cadence follows Sec. 3.2: [`CheckpointCadence`] measures the
//! step and checkpoint wall times at runtime and re-plans the write
//! interval through [`crate::checkpoint_interval`] so measured overhead
//! stays within the configured budget. The measurements feed an allreduce,
//! so every rank agrees on the interval and the collective checkpoint
//! writes stay in lockstep.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_comm::{FaultPlan, Rank, ReduceOp, Universe, UniverseCfg, UniverseError};
use eutectica_core::kernels::KernelConfig;
use eutectica_core::params::ModelParams;
use eutectica_core::state::BlockState;
use eutectica_core::timeloop::{DistributedSim, OverlapOptions};

use crate::ckpt::{self, BlockEntry, CkptError, Manifest, Precision, DEFAULT_BYTE_BUDGET};

/// Checkpoint-set operations on a distributed simulation.
pub trait SimCheckpointExt {
    /// Collectively write a checkpoint set for the current step under
    /// `root`. Every rank writes its local blocks; rank 0 gathers the
    /// per-block CRCs and writes the manifest last (the set is valid only
    /// once the manifest lands). Returns the bytes this rank wrote.
    ///
    /// Telemetry: span `checkpoint_write` (category `io`), counters
    /// `ckpt/bytes_written`, `ckpt/sets_written`, `ckpt/wall_ns`.
    fn write_checkpoint_set(&self, root: &Path, precision: Precision) -> Result<u64, CkptError>;

    /// Restore fields, time, step and window offset from the set in `dir`.
    /// The set must decompose the same [`DomainSpec`]; the rank count may
    /// differ from the writer's. Ghosts are refreshed collectively, so all
    /// ranks must call this together.
    fn restore_from_set(&mut self, dir: &Path, byte_budget: u64) -> Result<(), CkptError>;
}

impl SimCheckpointExt for DistributedSim<'_> {
    fn write_checkpoint_set(&self, root: &Path, precision: Precision) -> Result<u64, CkptError> {
        let tel = self.telemetry().clone();
        let start = Instant::now();
        let _span = tel.span_cat("checkpoint_write", "io");
        let step = self.step_index() as u64;
        let dir = ckpt::set_dir(root, step);
        std::fs::create_dir_all(&dir)?;
        let mut entries = Vec::with_capacity(self.blocks.len());
        let mut bytes_written = 0u64;
        for (li, &id) in self.local_block_ids().iter().enumerate() {
            let e =
                ckpt::write_block_file(&dir, &self.blocks[li], id as u64, self.time(), precision)?;
            bytes_written += e.file_bytes;
            entries.push(e);
        }
        // Rank 0 collects every rank's entries and completes the set.
        let mut payload = Vec::with_capacity(entries.len() * 20);
        for e in &entries {
            payload.extend_from_slice(&e.id.to_le_bytes());
            payload.extend_from_slice(&e.file_bytes.to_le_bytes());
            payload.extend_from_slice(&e.crc32.to_le_bytes());
        }
        let rank = self.comm_rank();
        if let Some(bufs) = rank.gather(0, Bytes::from(payload)) {
            let mut all = Vec::new();
            for buf in &bufs {
                assert!(buf.len() % 20 == 0, "malformed checkpoint entry payload");
                for chunk in buf.chunks_exact(20) {
                    all.push(BlockEntry {
                        id: u64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                        file_bytes: u64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                        crc32: u32::from_le_bytes(chunk[16..20].try_into().unwrap()),
                    });
                }
            }
            all.sort_by_key(|e| e.id);
            ckpt::write_manifest_file(
                &dir,
                &Manifest {
                    step,
                    time: self.time(),
                    window_shifts: self.window_shifts() as u64,
                    precision,
                    spec: self.decomp().spec,
                    blocks: all,
                },
            )?;
        }
        // The set is complete for everyone only after the manifest landed.
        rank.barrier();
        tel.counter_add("ckpt/bytes_written", bytes_written);
        tel.counter_add("ckpt/sets_written", 1);
        tel.counter_add("ckpt/wall_ns", start.elapsed().as_nanos() as u64);
        Ok(bytes_written)
    }

    fn restore_from_set(&mut self, dir: &Path, byte_budget: u64) -> Result<(), CkptError> {
        let tel = self.telemetry().clone();
        let start = Instant::now();
        {
            let _span = tel.span_cat("checkpoint_restore", "io");
            let manifest = ckpt::read_manifest_file(dir)?;
            if manifest.spec != self.decomp().spec {
                return Err(CkptError::Incompatible {
                    detail: format!(
                        "set decomposes {:?}, simulation runs {:?}",
                        manifest.spec,
                        self.decomp().spec
                    ),
                });
            }
            let ids: Vec<usize> = self.local_block_ids().to_vec();
            for (li, id) in ids.into_iter().enumerate() {
                let dec = ckpt::read_block_from_set(dir, &manifest, id as u64, byte_budget)?;
                let b = &mut self.blocks[li];
                if dec.state.dims != b.dims {
                    return Err(CkptError::Incompatible {
                        detail: format!(
                            "block {id}: checkpoint dims {:?} vs simulation {:?}",
                            dec.state.dims, b.dims
                        ),
                    });
                }
                // Keep this block's boundary conditions; take fields and the
                // (possibly window-shifted) origin from the file.
                b.origin = dec.state.origin;
                b.phi_src = dec.state.phi_src;
                b.mu_src = dec.state.mu_src;
                b.sync_dst_from_src();
            }
            self.set_progress(
                manifest.time,
                manifest.step as usize,
                manifest.window_shifts as usize,
            );
            self.refresh_src_ghosts();
        }
        tel.counter_add("ckpt/restores", 1);
        tel.counter_add("ckpt/restore_wall_ns", start.elapsed().as_nanos() as u64);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Auto-cadence
// ---------------------------------------------------------------------------

/// Measured-overhead checkpoint scheduler (Sec. 3.2).
///
/// Starts with an interval of 1 so the first checkpoint is taken (and
/// timed) immediately; afterwards the interval is re-planned from the
/// allreduced worst-rank step and checkpoint times via
/// [`crate::checkpoint_interval`], keeping the overhead under `budget`
/// uniformly across ranks.
#[derive(Clone, Debug)]
pub struct CheckpointCadence {
    budget: f64,
    step_ema: f64,
    interval: usize,
    last_ckpt_step: usize,
}

impl CheckpointCadence {
    /// New scheduler targeting `overhead_budget` (e.g. 0.01 = 1 %).
    pub fn new(overhead_budget: f64) -> Self {
        assert!(overhead_budget > 0.0);
        Self {
            budget: overhead_budget,
            step_ema: 0.0,
            interval: 1,
            last_ckpt_step: 0,
        }
    }

    /// Fixed-interval scheduler (no measurement; `observe_checkpoint` keeps
    /// the interval unchanged).
    pub fn fixed(every: usize) -> Self {
        assert!(every > 0);
        Self {
            budget: 0.0,
            step_ema: 0.0,
            interval: every,
            last_ckpt_step: 0,
        }
    }

    /// Current write interval in steps.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Record the wall time of one step.
    pub fn observe_step(&mut self, wall: Duration) {
        let s = wall.as_secs_f64();
        self.step_ema = if self.step_ema == 0.0 {
            s
        } else {
            0.7 * self.step_ema + 0.3 * s
        };
    }

    /// Record the wall time of the checkpoint just written at `step` and
    /// re-plan the interval. Collective when auto (allreduces the worst
    /// rank's measurements so all ranks agree on the next interval).
    pub fn observe_checkpoint(&mut self, rank: &Rank, wall: Duration, step: usize) {
        self.last_ckpt_step = step;
        if self.budget <= 0.0 {
            return; // fixed cadence
        }
        let step_max = rank.allreduce_f64(self.step_ema.max(1e-9), ReduceOp::Max);
        let ckpt_max = rank.allreduce_f64(wall.as_secs_f64(), ReduceOp::Max);
        self.interval = crate::checkpoint_interval(step_max, ckpt_max, self.budget);
    }

    /// Should a checkpoint be written after completing `step`?
    pub fn due(&self, step: usize) -> bool {
        step.saturating_sub(self.last_ckpt_step) >= self.interval
    }
}

// ---------------------------------------------------------------------------
// Resilient driver
// ---------------------------------------------------------------------------

/// Checkpoint cadence policy of [`run_resilient`].
#[derive(Clone, Debug)]
pub enum Cadence {
    /// Write every `n` steps.
    EverySteps(usize),
    /// Measure step/checkpoint cost and keep overhead under the budget.
    Auto {
        /// Fraction of runtime allowed for checkpointing (e.g. 0.01).
        overhead_budget: f64,
    },
}

impl Cadence {
    fn scheduler(&self) -> CheckpointCadence {
        match self {
            Cadence::EverySteps(n) => CheckpointCadence::fixed(*n),
            Cadence::Auto { overhead_budget } => CheckpointCadence::new(*overhead_budget),
        }
    }
}

/// Options of [`run_resilient`].
#[derive(Clone, Debug)]
pub struct ResilientOpts {
    /// Directory holding the checkpoint sets.
    pub ckpt_root: PathBuf,
    /// Checkpoint precision ([`Precision::F64`] for bit-identical resume).
    pub precision: Precision,
    /// Checkpoint cadence.
    pub cadence: Cadence,
    /// Rank count per attempt; attempts beyond the end reuse the last entry
    /// (restore re-decomposes, so counts may differ between attempts).
    pub ranks: Vec<usize>,
    /// Fault plan per attempt; attempts beyond the end run fault-free.
    /// (A kill re-fires forever if its plan is reused after restart, so
    /// plans are per-attempt by construction.)
    pub fault_plans: Vec<FaultPlan>,
    /// Give up after this many attempts.
    pub max_attempts: usize,
    /// Per-operation comm timeout (bounds failure-detection latency).
    pub op_timeout: Duration,
    /// Byte budget for checkpoint-header validation on restore.
    pub byte_budget: u64,
}

impl ResilientOpts {
    /// Sensible defaults: F64 checkpoints under `ckpt_root`, every 10
    /// steps, single-rank, no faults.
    pub fn new(ckpt_root: PathBuf) -> Self {
        Self {
            ckpt_root,
            precision: Precision::F64,
            cadence: Cadence::EverySteps(10),
            ranks: vec![1],
            fault_plans: Vec::new(),
            max_attempts: 3,
            op_timeout: Duration::from_secs(300),
            byte_budget: DEFAULT_BYTE_BUDGET,
        }
    }
}

/// Result of a successful [`run_resilient`].
#[derive(Debug)]
pub struct ResilientOutcome {
    /// Final block states in global block-id order.
    pub blocks: Vec<BlockState>,
    /// Final simulation time.
    pub time: f64,
    /// Attempts used (1 = no failure).
    pub attempts: usize,
    /// The universe failures that forced restarts, in order.
    pub failures: Vec<UniverseError>,
}

/// Failure of [`run_resilient`].
#[derive(Debug)]
pub enum ResilientError {
    /// Every attempt died; the recorded failures are in order.
    Exhausted {
        /// Attempts made.
        attempts: usize,
        /// Universe failure per attempt.
        failures: Vec<UniverseError>,
    },
    /// A checkpoint-set scan failed outside the universe.
    Ckpt(CkptError),
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Exhausted { attempts, failures } => {
                write!(f, "all {attempts} attempts failed")?;
                if let Some(last) = failures.last() {
                    write!(f, " (last: {last})")?;
                }
                Ok(())
            }
            ResilientError::Ckpt(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

impl From<CkptError> for ResilientError {
    fn from(e: CkptError) -> Self {
        ResilientError::Ckpt(e)
    }
}

/// Run `target_steps` of a distributed simulation to completion despite
/// rank failures: each attempt resumes from the latest valid checkpoint set
/// (or initializes with `init` when none exists), writes checkpoints at the
/// configured cadence, and a detected failure tears the universe down and
/// triggers the next attempt — possibly on a different rank count.
///
/// Each rank announces its step index to the fault-injection layer via
/// `fault_step`, so a [`FaultPlan::kill`] at step *k* fires exactly when
/// step *k* is about to run.
pub fn run_resilient<F>(
    params: ModelParams,
    spec: DomainSpec,
    cfg: KernelConfig,
    overlap: OverlapOptions,
    target_steps: usize,
    opts: ResilientOpts,
    init: F,
) -> Result<ResilientOutcome, ResilientError>
where
    F: Fn(&mut BlockState) + Send + Sync + 'static,
{
    assert!(opts.max_attempts > 0 && !opts.ranks.is_empty());
    let params = Arc::new(params);
    let init = Arc::new(init);
    let mut failures: Vec<UniverseError> = Vec::new();

    for attempt in 0..opts.max_attempts {
        let n_ranks = *opts
            .ranks
            .get(attempt)
            .unwrap_or_else(|| opts.ranks.last().unwrap());
        let resume_dir = ckpt::find_latest_checkpoint(&opts.ckpt_root)?.map(|(_, dir)| dir);

        let mut ucfg = UniverseCfg::with_timeout(opts.op_timeout);
        if let Some(plan) = opts.fault_plans.get(attempt) {
            ucfg = ucfg.with_faults(plan.clone());
        }

        let params = Arc::clone(&params);
        let init = Arc::clone(&init);
        let root = opts.ckpt_root.clone();
        let precision = opts.precision;
        let budget = opts.byte_budget;
        let cadence = opts.cadence.clone();

        type RankResult = (f64, Vec<(usize, BlockState)>);
        let run: Result<Vec<RankResult>, UniverseError> =
            Universe::run_checked(n_ranks, ucfg, move |rank| {
                let mut sim = DistributedSim::new(
                    &rank,
                    (*params).clone(),
                    Decomposition::new(spec),
                    cfg,
                    overlap,
                );
                match &resume_dir {
                    Some(dir) => sim
                        .restore_from_set(dir, budget)
                        .unwrap_or_else(|e| panic!("restore failed: {e}")),
                    None => sim.init_blocks(|b| init(b)),
                }
                let mut sched = cadence.scheduler();
                while sim.step_index() < target_steps {
                    rank.fault_step(sim.step_index() as u64);
                    let t0 = Instant::now();
                    sim.step();
                    sched.observe_step(t0.elapsed());
                    if sim.step_index() < target_steps && sched.due(sim.step_index()) {
                        let t0 = Instant::now();
                        sim.write_checkpoint_set(&root, precision)
                            .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"));
                        sched.observe_checkpoint(&rank, t0.elapsed(), sim.step_index());
                    }
                }
                let ids = sim.local_block_ids().to_vec();
                let blocks = std::mem::take(&mut sim.blocks);
                (sim.time(), ids.into_iter().zip(blocks).collect())
            });

        match run {
            Ok(per_rank) => {
                let time = per_rank[0].0;
                let mut tagged: Vec<(usize, BlockState)> =
                    per_rank.into_iter().flat_map(|(_, b)| b).collect();
                tagged.sort_by_key(|(id, _)| *id);
                return Ok(ResilientOutcome {
                    blocks: tagged.into_iter().map(|(_, b)| b).collect(),
                    time,
                    attempts: attempt + 1,
                    failures,
                });
            }
            Err(e) => failures.push(e),
        }
    }
    Err(ResilientError::Exhausted {
        attempts: opts.max_attempts,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Power-of-two durations keep every EMA and interval computation exact
    // in binary floating point, so the planned intervals can be asserted
    // without wall-clock slack.

    #[test]
    fn auto_cadence_interval_follows_measured_costs() {
        let out = Universe::run(1, |rank| {
            let mut c = CheckpointCadence::new(0.25);
            assert_eq!(c.interval(), 1, "first checkpoint is the probe");
            c.observe_step(Duration::from_secs_f64(1.0 / 64.0));
            c.observe_checkpoint(&rank, Duration::from_secs_f64(0.25), 1);
            // ckpt / (step * budget) = 0.25 / (1/64 * 0.25) = 64.
            assert_eq!(c.interval(), 64);
            assert!(!c.due(64));
            assert!(c.due(65));
            // Cheaper checkpoints tighten the interval.
            c.observe_checkpoint(&rank, Duration::from_secs_f64(1.0 / 16.0), 65);
            assert_eq!(c.interval(), 16);
            assert!(c.due(81));
            true
        });
        assert!(out[0]);
    }

    #[test]
    fn auto_cadence_agrees_across_ranks() {
        // Ranks measure different step costs; the allreduced worst rank
        // defines a single interval for everyone, keeping the collective
        // checkpoint writes in lockstep.
        let intervals = Universe::run(2, |rank| {
            let mut c = CheckpointCadence::new(0.25);
            let step = if rank.rank() == 0 {
                1.0 / 64.0
            } else {
                1.0 / 32.0
            };
            c.observe_step(Duration::from_secs_f64(step));
            c.observe_checkpoint(&rank, Duration::from_secs_f64(0.25), 1);
            c.interval()
        });
        assert_eq!(intervals, vec![32, 32]);
    }

    #[test]
    fn fixed_cadence_never_replans() {
        Universe::run(1, |rank| {
            let mut c = CheckpointCadence::fixed(7);
            c.observe_step(Duration::from_secs(1));
            c.observe_checkpoint(&rank, Duration::from_secs(30), 7);
            assert_eq!(c.interval(), 7);
            assert!(!c.due(13));
            assert!(c.due(14));
        });
    }
}
