//! Simulation I/O: checkpoints and VTK output (Sec. 3.2).
//!
//! "For generating checkpoints, the complete simulation state has to be
//! stored on disk, containing four φ values and two µ values per cell. While
//! all computations are carried out in double precision, checkpoints use
//! only single precision to save disk space and I/O bandwidth." This crate
//! implements exactly that checkpoint format, plus a legacy-VTK writer for
//! visual inspection of fields.
//!
//! Fault tolerance lives in four submodules: [`ckpt`] defines multi-block
//! *checkpoint sets* (per-block files + CRC-verified manifest, atomic
//! writes, OOM-hardened readers), [`replica`] mirrors block state into
//! buddy ranks' RAM for diskless shrink recovery, [`resilient`] wires
//! both into `DistributedSim` with an auto-cadence scheduler, the
//! [`resilient::run_resilient`] restart driver and its shrink-and-continue
//! recovery path, and [`jobs`] gives every campaign job an isolated
//! per-job checkpoint namespace built from the same set format.

#![deny(missing_docs)]

pub mod ckpt;
pub mod jobs;
pub mod replica;
pub mod resilient;

use std::io::{Read, Write};

use eutectica_blockgrid::decomp::{Decomposition, DomainSpec};
use eutectica_blockgrid::GridDims;
use eutectica_core::state::BlockState;
use eutectica_core::{N_COMP, N_PHASES};

/// Magic bytes identifying a checkpoint file.
const MAGIC: &[u8; 8] = b"EUTECKP1";

/// Write a single-precision checkpoint of a block's source fields.
///
/// Layout: magic, dims (nx, ny, nz, ghost), origin, time, then the interior
/// cells of the four φ components and two µ components as little-endian
/// f32, component-major. Ghost layers are *not* stored — they are
/// reconstructed by communication + boundary handling after restart.
pub fn write_checkpoint(w: &mut impl Write, state: &BlockState, time: f64) -> std::io::Result<()> {
    let d = state.dims;
    w.write_all(MAGIC)?;
    for v in [d.nx as u64, d.ny as u64, d.nz as u64, d.ghost as u64] {
        w.write_all(&v.to_le_bytes())?;
    }
    for v in state.origin {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    w.write_all(&time.to_le_bytes())?;
    let mut write_comp = |comp: &[f64]| -> std::io::Result<()> {
        for z in d.ghost..d.ghost + d.nz {
            for y in d.ghost..d.ghost + d.ny {
                let row = d.idx(d.ghost, y, z);
                for v in &comp[row..row + d.nx] {
                    w.write_all(&(*v as f32).to_le_bytes())?;
                }
            }
        }
        Ok(())
    };
    for c in 0..N_PHASES {
        write_comp(state.phi_src.comp(c))?;
    }
    for c in 0..N_COMP {
        write_comp(state.mu_src.comp(c))?;
    }
    Ok(())
}

/// Restore a checkpoint written by [`write_checkpoint`]. Returns the block
/// state (with default directional boundary conditions — adjust afterwards
/// if needed) and the simulation time.
///
/// Header dimensions are validated against [`ckpt::DEFAULT_BYTE_BUDGET`]
/// before any allocation — a corrupt 16-byte header cannot trigger a
/// multi-GB allocation; use [`read_checkpoint_bounded`] for a custom
/// budget.
///
/// Ghost layers are left at their initial values; call the appropriate
/// exchange/boundary handling before stepping.
pub fn read_checkpoint(r: &mut impl Read) -> std::io::Result<(BlockState, f64)> {
    read_checkpoint_bounded(r, ckpt::DEFAULT_BYTE_BUDGET)
}

/// [`read_checkpoint`] with an explicit byte budget: headers whose
/// dimensions imply an in-memory [`BlockState`] larger than `byte_budget`
/// are rejected with `InvalidData` before allocating.
pub fn read_checkpoint_bounded(
    r: &mut impl Read,
    byte_budget: u64,
) -> std::io::Result<(BlockState, f64)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a eutectica checkpoint",
        ));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut dyn Read| -> std::io::Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let nx = read_u64(r)?;
    let ny = read_u64(r)?;
    let nz = read_u64(r)?;
    let ghost = read_u64(r)?;
    let dims = ckpt::validate_dims(nx, ny, nz, ghost, byte_budget)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let (nx, ny, nz, ghost) = (dims.nx, dims.ny, dims.nz, dims.ghost);
    let origin = [
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    ];
    let mut f64buf = [0u8; 8];
    r.read_exact(&mut f64buf)?;
    let time = f64::from_le_bytes(f64buf);
    let mut state = BlockState::new(dims, origin);
    let mut buf = [0u8; 4];
    let mut read_comp = |r: &mut dyn Read, comp: &mut [f64]| -> std::io::Result<()> {
        for z in ghost..ghost + nz {
            for y in ghost..ghost + ny {
                let row = dims.idx(ghost, y, z);
                for v in comp[row..row + nx].iter_mut() {
                    r.read_exact(&mut buf)?;
                    *v = f32::from_le_bytes(buf) as f64;
                }
            }
        }
        Ok(())
    };
    for c in 0..N_PHASES {
        read_comp(r, state.phi_src.comp_mut(c))?;
    }
    for c in 0..N_COMP {
        read_comp(r, state.mu_src.comp_mut(c))?;
    }
    state.sync_dst_from_src();
    Ok((state, time))
}

/// Size in bytes of a checkpoint for the given dims (used by I/O planning).
pub fn checkpoint_size(dims: GridDims) -> usize {
    8 + 4 * 8 + 3 * 8 + 8 + dims.interior_volume() * (N_PHASES + N_COMP) * 4
}

/// Magic bytes of a block-structure file.
const BS_MAGIC: &[u8; 8] = b"EUTECBS1";

/// Persist the block structure. waLBerla's "initialization can be executed
/// independently of the actual simulation. The resulting block structure is
/// then stored in a file to be loaded by the simulation at runtime"
/// (Sec. 3.1). The decomposition is deterministic from the domain spec, so
/// the file stores the spec and the loader rebuilds the block graph.
pub fn write_block_structure(w: &mut impl Write, spec: &DomainSpec) -> std::io::Result<()> {
    w.write_all(BS_MAGIC)?;
    for v in spec.cells.iter().chain(spec.blocks.iter()) {
        w.write_all(&(*v as u64).to_le_bytes())?;
    }
    for p in spec.periodic {
        w.write_all(&[p as u8])?;
    }
    Ok(())
}

/// Load a block structure written by [`write_block_structure`] and rebuild
/// the full decomposition (block descriptors + neighbor topology).
pub fn read_block_structure(r: &mut impl Read) -> std::io::Result<Decomposition> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BS_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a eutectica block-structure file",
        ));
    }
    let mut buf = [0u8; 8];
    let mut read_u64 = |r: &mut dyn Read| -> std::io::Result<u64> {
        r.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    };
    let cells = [
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    ];
    let blocks = [
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    ];
    let mut pb = [0u8; 3];
    r.read_exact(&mut pb)?;
    let spec = DomainSpec {
        cells,
        blocks,
        periodic: [pb[0] != 0, pb[1] != 0, pb[2] != 0],
    };
    Ok(Decomposition::new(spec))
}

/// Checkpoint-cadence planning: "Writing a checkpoint can take a
/// significant amount of time compared to a simulation time step, therefore
/// checkpoints are written infrequently" (Sec. 3.2). Given the measured (or
/// modeled) time of one step and of one checkpoint, return the smallest
/// write interval (in steps) that keeps the checkpoint overhead below
/// `overhead_budget` (e.g. 0.01 = 1 % of runtime).
pub fn checkpoint_interval(step_time: f64, checkpoint_time: f64, overhead_budget: f64) -> usize {
    assert!(step_time > 0.0 && checkpoint_time >= 0.0);
    assert!(overhead_budget > 0.0);
    ((checkpoint_time / (step_time * overhead_budget)).ceil() as usize).max(1)
}

/// Write the interior fields as a legacy-VTK `STRUCTURED_POINTS` file with
/// the four φ components, the dominant-phase id, and the two µ components.
pub fn write_vtk(w: &mut impl Write, state: &BlockState, title: &str) -> std::io::Result<()> {
    let d = state.dims;
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "{title}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {} {} {}", d.nx, d.ny, d.nz)?;
    writeln!(
        w,
        "ORIGIN {} {} {}",
        state.origin[0], state.origin[1], state.origin[2]
    )?;
    writeln!(w, "SPACING 1 1 1")?;
    writeln!(w, "POINT_DATA {}", d.interior_volume())?;
    for c in 0..N_PHASES {
        writeln!(w, "SCALARS phi{c} float 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for (x, y, z) in d.interior_iter() {
            writeln!(w, "{}", state.phi_src.at(c, x, y, z) as f32)?;
        }
    }
    writeln!(w, "SCALARS phase_id float 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (x, y, z) in d.interior_iter() {
        let phi = state.phi_src.cell(x, y, z);
        let id = (0..N_PHASES)
            .max_by(|&a, &b| phi[a].total_cmp(&phi[b]))
            .unwrap();
        writeln!(w, "{id}")?;
    }
    for c in 0..N_COMP {
        writeln!(w, "SCALARS mu{c} float 1")?;
        writeln!(w, "LOOKUP_TABLE default")?;
        for (x, y, z) in d.interior_iter() {
            writeln!(w, "{}", state.mu_src.at(c, x, y, z) as f32)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_state(seed: u64) -> BlockState {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dims = GridDims::new(6, 5, 7, 1);
        let mut s = BlockState::new(dims, [3, 1, 9]);
        for (x, y, z) in dims.interior_iter() {
            let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
            s.phi_src
                .set_cell(x, y, z, eutectica_core::simplex::project_to_simplex(raw));
            s.mu_src.set_cell(
                x,
                y,
                z,
                [rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)],
            );
        }
        s
    }

    #[test]
    fn checkpoint_roundtrip_within_f32_precision() {
        let s = random_state(5);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &s, 123.25).unwrap();
        assert_eq!(buf.len(), checkpoint_size(s.dims));
        let (s2, time) = read_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(time, 123.25);
        assert_eq!(s2.dims, s.dims);
        assert_eq!(s2.origin, s.origin);
        for c in 0..N_PHASES {
            for (x, y, z) in s.dims.interior_iter() {
                let a = s.phi_src.at(c, x, y, z);
                let b = s2.phi_src.at(c, x, y, z);
                assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7, "phi[{c}]");
            }
        }
        for c in 0..N_COMP {
            for (x, y, z) in s.dims.interior_iter() {
                let a = s.mu_src.at(c, x, y, z);
                let b = s2.mu_src.at(c, x, y, z);
                assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7, "mu[{c}]");
            }
        }
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        let garbage = b"NOTACKPT-and-some-more-bytes".to_vec();
        assert!(read_checkpoint(&mut garbage.as_slice()).is_err());
    }

    #[test]
    fn checkpoint_is_single_precision_sized() {
        // 4 φ + 2 µ per cell at 4 bytes — half the in-memory double size.
        let dims = GridDims::new(10, 10, 10, 1);
        let payload = checkpoint_size(dims) - (8 + 4 * 8 + 3 * 8 + 8);
        assert_eq!(payload, 1000 * 6 * 4);
    }

    #[test]
    fn block_structure_roundtrip() {
        let spec = DomainSpec::directional([48, 24, 96], [4, 2, 3]);
        let mut buf = Vec::new();
        write_block_structure(&mut buf, &spec).unwrap();
        let d = read_block_structure(&mut buf.as_slice()).unwrap();
        assert_eq!(d.spec, spec);
        let direct = Decomposition::new(spec);
        assert_eq!(d.blocks().len(), direct.blocks().len());
        for (a, b) in d.blocks().iter().zip(direct.blocks()) {
            assert_eq!(a, b);
        }
        // Garbage is rejected.
        assert!(read_block_structure(&mut &b"NOTABS.."[..]).is_err());
    }

    #[test]
    fn checkpoint_cadence() {
        // A checkpoint costing 50 steps of runtime at a 1 % budget must be
        // written at most every 5000 steps.
        assert_eq!(checkpoint_interval(1.0, 50.0, 0.01), 5000);
        // Free checkpoints may go every step.
        assert_eq!(checkpoint_interval(1.0, 0.0, 0.01), 1);
        // Budgets below one checkpoint per step round up to 1.
        assert_eq!(checkpoint_interval(10.0, 1.0, 0.5), 1);
    }

    #[test]
    fn vtk_output_contains_all_fields() {
        let s = random_state(9);
        let mut out = Vec::new();
        write_vtk(&mut out, &s, "test").unwrap();
        let text = String::from_utf8(out).unwrap();
        for field in ["phi0", "phi1", "phi2", "phi3", "phase_id", "mu0", "mu1"] {
            assert!(
                text.contains(&format!("SCALARS {field} float 1")),
                "{field}"
            );
        }
        assert!(text.contains("DIMENSIONS 6 5 7"));
        assert!(text.contains("ORIGIN 3 1 9"));
        // One value per interior cell per field.
        let values = text.lines().filter(|l| l.parse::<f32>().is_ok()).count();
        assert_eq!(values, 6 * 5 * 7 * 7);
    }
}
