//! In-memory buddy replicas for diskless shrink recovery.
//!
//! At checkpoint cadence every rank encodes its blocks as `EUTMIG01`
//! frames (the PR 5 migration codec — byte-exact, self-describing) and
//! mirrors each frame into a *buddy* rank's RAM: the next alive rank in
//! the membership ring. When a rank dies, every one of its blocks still
//! exists in exactly one survivor's [`ReplicaStore`], so the shrink
//! recovery driver can re-home and restore lost state without a disk
//! round-trip — the paper's flagship scale makes the parallel filesystem
//! the scarcest resource precisely when everyone is recovering at once.
//!
//! Restore applies frames exactly the way a disk restore applies
//! checkpoint blocks (origin + source fields, then `sync_dst_from_src`,
//! then a collective ghost refresh), so a buddy-restored run is
//! bit-identical to one restored from the equivalent checkpoint set.

use std::collections::BTreeMap;

use bytes::Bytes;
use eutectica_blockgrid::rebalance::CostEntry;
use eutectica_comm::Tag;
use eutectica_core::migrate;
use eutectica_core::timeloop::DistributedSim;

/// Tag space: block capture frames ride above the ghost-exchange
/// (`[0, 24·nb)`) and migration (`[24·nb, 25·nb)`) ranges.
fn capture_tag(nb: usize, id: usize) -> Tag {
    (25 * nb + id) as Tag
}

/// Tag space for recovery fetches, above the capture range.
fn fetch_tag(nb: usize, id: usize) -> Tag {
    (26 * nb + id) as Tag
}

/// The buddy of `r` in the alive ring: the next alive rank, cyclically.
/// With a single alive rank the buddy is `r` itself (no redundancy left).
pub fn buddy_of(alive: &[usize], r: usize) -> usize {
    let i = alive
        .iter()
        .position(|&a| a == r)
        .expect("buddy_of: rank not in the alive set");
    alive[(i + 1) % alive.len()]
}

/// Progress metadata of the captured state, mirroring a checkpoint
/// manifest's step/time/window fields.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaMeta {
    /// Step index at capture.
    pub step: u64,
    /// Simulation time at capture.
    pub time: f64,
    /// Moving-window shifts at capture.
    pub window_shifts: u64,
}

/// Why a buddy restore failed.
#[derive(Debug)]
pub enum ReplicaError {
    /// No capture has been taken yet.
    NoCapture,
    /// Both the block's capture-time owner and its buddy are dead.
    FrameLost {
        /// Global block id whose frame is unrecoverable.
        id: usize,
    },
    /// A frame expected in this store is missing (internal inconsistency).
    MissingFrame {
        /// Global block id of the missing frame.
        id: usize,
    },
    /// A frame failed to decode.
    Decode {
        /// Global block id of the bad frame.
        id: usize,
        /// Human-readable decode failure.
        detail: String,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::NoCapture => write!(f, "no replica capture taken yet"),
            ReplicaError::FrameLost { id } => {
                write!(f, "block {id}: owner and buddy both dead, frame lost")
            }
            ReplicaError::MissingFrame { id } => {
                write!(f, "block {id}: frame missing from the replica store")
            }
            ReplicaError::Decode { id, detail } => {
                write!(f, "block {id}: replica frame failed to decode: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// What a [`ReplicaStore::restore`] did, for telemetry and rank-0 summary
/// lines.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaRestoreReport {
    /// Step the simulation was reset to.
    pub step: u64,
    /// Frame bytes this rank sent or received over the wire (local frame
    /// reuse is free).
    pub bytes_moved: u64,
}

/// One rank's share of the buddy-replica plane: its own blocks' frames
/// plus its predecessor's, refreshed at every capture.
#[derive(Debug)]
pub struct ReplicaStore {
    byte_budget: u64,
    /// Frames by global block id: this rank's own blocks plus the blocks
    /// of the rank whose buddy this rank is.
    frames: BTreeMap<usize, Vec<u8>>,
    /// Global placement at capture time.
    placement: Vec<usize>,
    /// Alive ranks at capture time (defines the buddy ring).
    alive: Vec<usize>,
    meta: Option<ReplicaMeta>,
}

impl ReplicaStore {
    /// Empty store; `byte_budget` caps per-frame decode allocations like
    /// the checkpoint reader's budget.
    pub fn new(byte_budget: u64) -> Self {
        Self {
            byte_budget,
            frames: BTreeMap::new(),
            placement: Vec::new(),
            alive: Vec::new(),
            meta: None,
        }
    }

    /// Progress metadata of the last capture, if any.
    pub fn meta(&self) -> Option<ReplicaMeta> {
        self.meta
    }

    /// Total frame bytes currently held in this rank's RAM.
    pub fn bytes_held(&self) -> u64 {
        self.frames.values().map(|f| f.len() as u64).sum()
    }

    /// Collectively capture the current state: encode every local block,
    /// keep the frames, and mirror them into the buddy's store. All alive
    /// ranks must call this together (checkpoint cadence is collective, so
    /// the call sites line up). Comm failures surface through the
    /// panicking comm layer — run under `catch_comm` to get typed errors.
    pub fn capture(&mut self, sim: &DistributedSim<'_>) {
        let rank = sim.comm_rank();
        let me = rank.rank();
        let alive = rank.alive_ranks();
        let placement = sim.placement().to_vec();
        let nb = placement.len();
        self.frames.clear();
        // The cost entry in a frame only warm-starts the rebalancer, which
        // the recovery driver re-attaches from scratch — a neutral entry
        // keeps capture independent of rebalancer state.
        let entry = CostEntry {
            measured: None,
            prior: 0.0,
        };
        for (li, &id) in sim.local_block_ids().iter().enumerate() {
            self.frames.insert(
                id,
                migrate::encode_block(&sim.blocks[li], id as u64, &entry),
            );
        }
        if alive.len() > 1 {
            let my_pos = alive.iter().position(|&a| a == me).expect("self is alive");
            let buddy = alive[(my_pos + 1) % alive.len()];
            let pred = alive[(my_pos + alive.len() - 1) % alive.len()];
            for (&id, frame) in self.frames.iter() {
                rank.isend(buddy, capture_tag(nb, id), Bytes::from(frame.clone()));
            }
            for id in (0..nb).filter(|&id| placement[id] == pred) {
                let b = rank.recv(pred, capture_tag(nb, id));
                self.frames.insert(id, b.to_vec());
            }
        }
        self.placement = placement;
        self.alive = alive;
        self.meta = Some(ReplicaMeta {
            step: sim.step_index() as u64,
            time: sim.time(),
            window_shifts: sim.window_shifts() as u64,
        });
    }

    /// The rank currently holding block `id`'s frame: its capture-time
    /// owner if still alive, else that owner's capture-time buddy.
    fn holder(&self, sim: &DistributedSim<'_>, id: usize) -> Result<usize, ReplicaError> {
        let owner = self.placement[id];
        if sim.comm_rank().is_alive(owner) {
            return Ok(owner);
        }
        let b = buddy_of(&self.alive, owner);
        if b != owner && sim.comm_rank().is_alive(b) {
            Ok(b)
        } else {
            Err(ReplicaError::FrameLost { id })
        }
    }

    /// Collectively restore every block of the (possibly re-homed)
    /// simulation from the last capture: frame holders ship frames to the
    /// blocks' new owners, fields and origins are applied exactly like a
    /// disk restore, progress is reset to the capture point and ghosts are
    /// refreshed. Call after `adopt_placement`, on every survivor, with
    /// membership already recovered.
    pub fn restore(
        &self,
        sim: &mut DistributedSim<'_>,
    ) -> Result<ReplicaRestoreReport, ReplicaError> {
        let meta = self.meta.ok_or(ReplicaError::NoCapture)?;
        let nb = sim.placement().len();
        assert_eq!(
            self.placement.len(),
            nb,
            "replica capture decomposes a different block count"
        );
        let me = sim.comm_rank().rank();
        let new_placement = sim.placement().to_vec();
        let mut bytes_moved = 0u64;
        // Ship everything this rank holds that now lives elsewhere; sends
        // are non-blocking, so posting them all before receiving cannot
        // deadlock.
        for (id, &owner) in new_placement.iter().enumerate() {
            if self.holder(sim, id)? == me && owner != me {
                let frame = self
                    .frames
                    .get(&id)
                    .ok_or(ReplicaError::MissingFrame { id })?;
                bytes_moved += frame.len() as u64;
                sim.comm_rank()
                    .isend(owner, fetch_tag(nb, id), Bytes::from(frame.clone()));
            }
        }
        let ids: Vec<usize> = sim.local_block_ids().to_vec();
        for (li, id) in ids.into_iter().enumerate() {
            let holder = self.holder(sim, id)?;
            let buf = if holder == me {
                Bytes::from(
                    self.frames
                        .get(&id)
                        .ok_or(ReplicaError::MissingFrame { id })?
                        .clone(),
                )
            } else {
                let b = sim.comm_rank().recv(holder, fetch_tag(nb, id));
                bytes_moved += b.len() as u64;
                b
            };
            let expected = sim.decomp().block(id).dims(1);
            let (fid, st, _entry) = migrate::decode_block(&buf, expected, self.byte_budget)
                .map_err(|e| ReplicaError::Decode {
                    id,
                    detail: e.to_string(),
                })?;
            if fid as usize != id {
                return Err(ReplicaError::Decode {
                    id,
                    detail: format!("frame labels block {fid}"),
                });
            }
            // Mirror the disk restore exactly: keep this block's BCs, take
            // the origin and source fields from the frame.
            let b = &mut sim.blocks[li];
            b.origin = st.origin;
            b.phi_src = st.phi_src;
            b.mu_src = st.mu_src;
            b.sync_dst_from_src();
        }
        sim.set_progress(meta.time, meta.step as usize, meta.window_shifts as usize);
        sim.refresh_src_ghosts();
        Ok(ReplicaRestoreReport {
            step: meta.step,
            bytes_moved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_ring_is_the_next_alive_rank() {
        assert_eq!(buddy_of(&[0, 1, 2, 3], 1), 2);
        assert_eq!(buddy_of(&[0, 1, 2, 3], 3), 0);
        assert_eq!(buddy_of(&[0, 2, 3], 0), 2, "ring skips dead ranks");
        assert_eq!(buddy_of(&[0, 2, 3], 3), 0);
        assert_eq!(buddy_of(&[2], 2), 2, "lone survivor is its own buddy");
    }
}
