//! Multi-block *checkpoint sets*: the fault-tolerant on-disk format.
//!
//! A checkpoint set is one directory per checkpointed step containing
//!
//! * one block file per block (`block_<id>.eckp`, format `EUTECKP2`) with
//!   the block's φ and µ interiors at a chosen [`Precision`], and
//! * a manifest (`manifest.eckm`, format `EUTECMF1`) written *last* by rank
//!   0, recording step index, simulation time, moving-window shift count,
//!   the domain decomposition, and a CRC32 per block file plus one over the
//!   manifest itself.
//!
//! Every file is written atomically (tmp file + fsync + rename), so a crash
//! mid-write never leaves a half-written file under its final name, and a
//! set is *valid* exactly when its manifest exists and verifies — blocks
//! without a manifest are an aborted checkpoint and are ignored by
//! [`find_latest_checkpoint`].
//!
//! The readers are hardened against corrupt input: every section is
//! CRC-checked, dimension fields are validated against a byte budget
//! *before* any allocation (a flipped bit in `nx` cannot trigger a multi-GB
//! allocation), and all failures surface as typed [`CkptError`]s.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use eutectica_blockgrid::decomp::DomainSpec;
use eutectica_blockgrid::GridDims;
use eutectica_core::state::BlockState;
use eutectica_core::{N_COMP, N_PHASES};

/// Magic bytes of a v2 (checkpoint-set) block file.
pub const BLOCK_MAGIC: &[u8; 8] = b"EUTECKP2";
/// Magic bytes of a checkpoint-set manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"EUTECMF1";
/// Format version written into block files and manifests.
pub const FORMAT_VERSION: u32 = 1;
/// Manifest file name inside a checkpoint-set directory.
pub const MANIFEST_FILE: &str = "manifest.eckm";
/// Default cap on the in-memory size implied by a block file's header
/// (4 GiB); [`decode_block`] rejects headers over budget *before*
/// allocating.
pub const DEFAULT_BYTE_BUDGET: u64 = 4 << 30;

/// In-memory bytes per cell of a [`BlockState`]: φ and µ each in src + dst
/// buffers of f64.
const MEM_BYTES_PER_CELL: u64 = ((N_PHASES + N_COMP) * 2 * 8) as u64;

/// CRC32 (IEEE 802.3, the zlib polynomial) of `data`.
///
/// Delegates to the single shared implementation in
/// [`eutectica_blockgrid::codec`] so checkpoints and migration payloads are
/// guaranteed to use the same checksum (re-exported here for the existing
/// checkpoint-format callers).
pub fn crc32(data: &[u8]) -> u32 {
    eutectica_blockgrid::codec::crc32(data)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of a checkpoint-set read or write.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// What was being parsed.
        what: &'static str,
    },
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The input ended before the structure was complete.
    Truncated {
        /// What was being parsed.
        what: &'static str,
    },
    /// A CRC32 check failed — the bytes were corrupted.
    CrcMismatch {
        /// What was being verified.
        what: String,
        /// CRC recorded in the file/manifest.
        expected: u32,
        /// CRC of the actual bytes.
        found: u32,
    },
    /// Header dimensions imply an allocation over the byte budget (or are
    /// zero/overflowing) — refusing to allocate.
    InsaneDims {
        /// Human-readable description of the offending values.
        detail: String,
    },
    /// The manifest has no entry for the requested block.
    MissingBlock {
        /// The absent block id.
        id: u64,
    },
    /// The checkpoint does not fit the running simulation (different domain
    /// spec, dims, or block layout).
    Incompatible {
        /// What did not match.
        detail: String,
    },
    /// A collective checkpoint operation failed on *another* rank: this
    /// rank's local part succeeded, but the set as a whole is invalid.
    /// Distinguishes "my I/O failed" from "a peer's did" in the typed
    /// per-rank failure path of the resilient driver.
    PeerFailure {
        /// Which collective operation failed.
        during: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic { what } => write!(f, "{what}: bad magic bytes"),
            CkptError::UnsupportedVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::Truncated { what } => write!(f, "{what}: truncated"),
            CkptError::CrcMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what}: CRC mismatch (recorded {expected:#010x}, actual {found:#010x})"
            ),
            CkptError::InsaneDims { detail } => {
                write!(f, "refusing insane checkpoint dimensions: {detail}")
            }
            CkptError::MissingBlock { id } => write!(f, "manifest has no entry for block {id}"),
            CkptError::Incompatible { detail } => {
                write!(f, "checkpoint incompatible with simulation: {detail}")
            }
            CkptError::PeerFailure { during } => {
                write!(f, "a peer rank failed during collective {during}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Precision
// ---------------------------------------------------------------------------

/// Floating-point width of checkpointed field payloads.
///
/// The paper stores checkpoints in single precision "to save disk space and
/// I/O bandwidth" (Sec. 3.2); bit-identical restart (required to compare
/// interrupted and uninterrupted runs) needs [`Precision::F64`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 4-byte payload values (paper default; lossy restart).
    F32,
    /// 8-byte payload values (bit-identical restart).
    F64,
}

impl Precision {
    /// Payload bytes per value.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    fn code(self) -> u8 {
        self.bytes() as u8
    }

    fn from_code(c: u8) -> Result<Self, CkptError> {
        match c {
            4 => Ok(Precision::F32),
            8 => Ok(Precision::F64),
            _ => Err(CkptError::Incompatible {
                detail: format!("unknown precision code {c}"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Dimension validation (the anti-OOM gate)
// ---------------------------------------------------------------------------

/// Validate header-supplied grid dimensions against `budget` (bytes of
/// in-memory [`BlockState`] they would allocate) *before* any allocation.
/// All arithmetic is checked, so `u64::MAX`-style values fail cleanly.
pub fn validate_dims(
    nx: u64,
    ny: u64,
    nz: u64,
    ghost: u64,
    budget: u64,
) -> Result<GridDims, CkptError> {
    let insane = |detail: String| Err(CkptError::InsaneDims { detail });
    if nx == 0 || ny == 0 || nz == 0 {
        return insane(format!("empty grid {nx}×{ny}×{nz}"));
    }
    let total = |n: u64| ghost.checked_mul(2).and_then(|g2| n.checked_add(g2));
    let (Some(tx), Some(ty), Some(tz)) = (total(nx), total(ny), total(nz)) else {
        return insane(format!("ghost width {ghost} overflows extents"));
    };
    let vol = tx
        .checked_mul(ty)
        .and_then(|v| v.checked_mul(tz))
        .and_then(|v| v.checked_mul(MEM_BYTES_PER_CELL));
    match vol {
        Some(bytes) if bytes <= budget => {}
        _ => {
            return insane(format!(
                "{nx}×{ny}×{nz} (ghost {ghost}) implies > {budget} bytes"
            ))
        }
    }
    if usize::try_from(tx.checked_mul(ty).unwrap().checked_mul(tz).unwrap()).is_err() {
        return insane(format!("{nx}×{ny}×{nz} exceeds the address space"));
    }
    Ok(GridDims::new(
        nx as usize,
        ny as usize,
        nz as usize,
        ghost as usize,
    ))
}

// ---------------------------------------------------------------------------
// Little-endian cursor over a byte slice
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Self { buf, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.buf.len() < n {
            return Err(CkptError::Truncated { what: self.what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------------
// Block files (EUTECKP2)
// ---------------------------------------------------------------------------

/// A block decoded from a checkpoint-set block file.
#[derive(Debug)]
pub struct DecodedBlock {
    /// Global block id recorded in the file.
    pub id: u64,
    /// Simulation time recorded in the file.
    pub time: f64,
    /// Payload precision of the file.
    pub precision: Precision,
    /// The restored block (source fields filled, dst synced from src,
    /// default boundary conditions — the caller re-applies its own).
    pub state: BlockState,
}

/// Encoded size in bytes of a block file for the given dims and precision.
pub fn block_file_size(dims: GridDims, precision: Precision) -> usize {
    // magic + version + precision + id + dims(4) + origin(3) + time + crc
    let header = 8 + 4 + 1 + 8 + 4 * 8 + 3 * 8 + 8;
    header + dims.interior_volume() * (N_PHASES + N_COMP) * precision.bytes() + 4
}

/// Serialize one block's source fields into the `EUTECKP2` byte format
/// (header, interior payload component-major, trailing CRC32 over
/// everything before it).
pub fn encode_block(state: &BlockState, id: u64, time: f64, precision: Precision) -> Vec<u8> {
    let d = state.dims;
    let mut out = Vec::with_capacity(block_file_size(d, precision));
    out.extend_from_slice(BLOCK_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(precision.code());
    out.extend_from_slice(&id.to_le_bytes());
    for v in [d.nx as u64, d.ny as u64, d.nz as u64, d.ghost as u64] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in state.origin {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out.extend_from_slice(&time.to_le_bytes());
    let write_comp = |comp: &[f64], out: &mut Vec<u8>| {
        for z in d.ghost..d.ghost + d.nz {
            for y in d.ghost..d.ghost + d.ny {
                let row = d.idx(d.ghost, y, z);
                for v in &comp[row..row + d.nx] {
                    match precision {
                        Precision::F32 => out.extend_from_slice(&(*v as f32).to_le_bytes()),
                        Precision::F64 => out.extend_from_slice(&v.to_le_bytes()),
                    }
                }
            }
        }
    };
    for c in 0..N_PHASES {
        write_comp(state.phi_src.comp(c), &mut out);
    }
    for c in 0..N_COMP {
        write_comp(state.mu_src.comp(c), &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode an `EUTECKP2` block file, verifying its trailing CRC and
/// validating the header dimensions against `budget` before allocating.
pub fn decode_block(bytes: &[u8], budget: u64) -> Result<DecodedBlock, CkptError> {
    let what = "block file";
    if bytes.len() < 8 + 4 + 4 {
        return Err(CkptError::Truncated { what });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let recorded = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let actual = crc32(body);
    if recorded != actual {
        return Err(CkptError::CrcMismatch {
            what: what.into(),
            expected: recorded,
            found: actual,
        });
    }
    let mut r = Reader::new(body, what);
    if r.take(8)? != BLOCK_MAGIC {
        return Err(CkptError::BadMagic { what });
    }
    let version = r.u32()?;
    if version > FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let precision = Precision::from_code(r.u8()?)?;
    let id = r.u64()?;
    let (nx, ny, nz, ghost) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
    let dims = validate_dims(nx, ny, nz, ghost, budget)?;
    let origin_raw = [r.u64()?, r.u64()?, r.u64()?];
    let mut origin = [0usize; 3];
    for (o, v) in origin.iter_mut().zip(origin_raw) {
        *o = usize::try_from(v).map_err(|_| CkptError::InsaneDims {
            detail: format!("origin component {v} exceeds the address space"),
        })?;
    }
    let time = r.f64()?;
    let expect = dims.interior_volume() * (N_PHASES + N_COMP) * precision.bytes();
    if r.buf.len() != expect {
        return Err(CkptError::Truncated { what });
    }

    let mut state = BlockState::new(dims, origin);
    let read_comp = |r: &mut Reader<'_>, comp: &mut [f64]| -> Result<(), CkptError> {
        for z in dims.ghost..dims.ghost + dims.nz {
            for y in dims.ghost..dims.ghost + dims.ny {
                let row = dims.idx(dims.ghost, y, z);
                for v in comp[row..row + dims.nx].iter_mut() {
                    *v = match precision {
                        Precision::F32 => f32::from_le_bytes(r.take(4)?.try_into().unwrap()) as f64,
                        Precision::F64 => f64::from_le_bytes(r.take(8)?.try_into().unwrap()),
                    };
                }
            }
        }
        Ok(())
    };
    for c in 0..N_PHASES {
        read_comp(&mut r, state.phi_src.comp_mut(c))?;
    }
    for c in 0..N_COMP {
        read_comp(&mut r, state.mu_src.comp_mut(c))?;
    }
    state.sync_dst_from_src();
    Ok(DecodedBlock {
        id,
        time,
        precision,
        state,
    })
}

// ---------------------------------------------------------------------------
// Manifests (EUTECMF1)
// ---------------------------------------------------------------------------

/// Per-block record in a [`Manifest`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// Global block id.
    pub id: u64,
    /// Size of the block file in bytes.
    pub file_bytes: u64,
    /// CRC32 of the whole block file.
    pub crc32: u32,
}

/// Checkpoint-set manifest: everything needed to validate and restore a
/// set, written last so its presence marks the set complete.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Step index the checkpoint was taken at.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Moving-window shift count.
    pub window_shifts: u64,
    /// Payload precision of the block files.
    pub precision: Precision,
    /// The domain decomposition the set was written under. Restore
    /// re-decomposes this spec, so a set written by N ranks restores onto
    /// any rank count dividing the same blocks.
    pub spec: DomainSpec,
    /// One entry per block, sorted by id.
    pub blocks: Vec<BlockEntry>,
}

/// Serialize a manifest (`EUTECMF1`, trailing self-CRC32).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(8 + 4 + 8 + 8 + 8 + 1 + 6 * 8 + 3 + 8 + m.blocks.len() * 20 + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&m.step.to_le_bytes());
    out.extend_from_slice(&m.time.to_le_bytes());
    out.extend_from_slice(&m.window_shifts.to_le_bytes());
    out.push(m.precision.code());
    for v in m.spec.cells.iter().chain(m.spec.blocks.iter()) {
        out.extend_from_slice(&(*v as u64).to_le_bytes());
    }
    for p in m.spec.periodic {
        out.push(p as u8);
    }
    out.extend_from_slice(&(m.blocks.len() as u64).to_le_bytes());
    for b in &m.blocks {
        out.extend_from_slice(&b.id.to_le_bytes());
        out.extend_from_slice(&b.file_bytes.to_le_bytes());
        out.extend_from_slice(&b.crc32.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse and verify a manifest serialized by [`encode_manifest`].
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, CkptError> {
    let what = "manifest";
    if bytes.len() < 8 + 4 + 4 {
        return Err(CkptError::Truncated { what });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let recorded = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let actual = crc32(body);
    if recorded != actual {
        return Err(CkptError::CrcMismatch {
            what: what.into(),
            expected: recorded,
            found: actual,
        });
    }
    let mut r = Reader::new(body, what);
    if r.take(8)? != MANIFEST_MAGIC {
        return Err(CkptError::BadMagic { what });
    }
    let version = r.u32()?;
    if version > FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let step = r.u64()?;
    let time = r.f64()?;
    let window_shifts = r.u64()?;
    let precision = Precision::from_code(r.u8()?)?;
    let mut six = [0u64; 6];
    for v in &mut six {
        *v = r.u64()?;
    }
    let mut periodic = [false; 3];
    for p in &mut periodic {
        *p = r.u8()? != 0;
    }
    let to_usize = |v: u64| {
        usize::try_from(v).map_err(|_| CkptError::InsaneDims {
            detail: format!("domain extent {v} exceeds the address space"),
        })
    };
    let spec = DomainSpec {
        cells: [to_usize(six[0])?, to_usize(six[1])?, to_usize(six[2])?],
        blocks: [to_usize(six[3])?, to_usize(six[4])?, to_usize(six[5])?],
        periodic,
    };
    let n = r.u64()?;
    // 20 bytes per entry must fit in what remains — rejects a corrupt count
    // before the allocation below.
    if (n as u128) * 20 != r.buf.len() as u128 {
        return Err(CkptError::Truncated { what });
    }
    let mut blocks = Vec::with_capacity(n as usize);
    for _ in 0..n {
        blocks.push(BlockEntry {
            id: r.u64()?,
            file_bytes: r.u64()?,
            crc32: r.u32()?,
        });
    }
    Ok(Manifest {
        step,
        time,
        window_shifts,
        precision,
        spec,
        blocks,
    })
}

// ---------------------------------------------------------------------------
// Filesystem layer: atomic writes + set layout
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, then rename over the final name. A crash mid-write leaves only
/// the tmp file, never a torn final file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Bounded-backoff retry for transient checkpoint I/O (overloaded parallel
/// filesystems routinely fail writes transiently at scale).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1; 1 = no retry).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry, capped at 500 ms.
    pub backoff: Duration,
    /// Fraction of each delay that is randomized (0 = pure exponential,
    /// 1 = anywhere in `(0, delay]`). Seeded jitter spreads N ranks
    /// hammering a shared filesystem so they don't retry in lockstep.
    pub jitter: f64,
    /// Seed of the deterministic jitter stream; derive it from something
    /// rank- or block-unique (e.g. the global block id) so peers draw
    /// different schedules while reruns stay reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_millis(5),
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Same policy with the jitter stream re-seeded.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Cap on the exponential backoff delay.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// SplitMix64 — the same tiny deterministic generator the fault-injection
/// layer uses; good enough to decorrelate retry schedules.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Delay before retry `attempt` (0-based) under `policy`: exponential base
/// `backoff · 2^attempt` capped at 500 ms, with the top `jitter` fraction
/// scaled by a seeded uniform draw. Pure — `(policy, attempt)` fully
/// determines the delay, so the whole schedule is reproducible and
/// unit-testable without sleeping.
pub fn retry_delay(policy: RetryPolicy, attempt: u32) -> Duration {
    let base = policy.backoff.as_secs_f64() * 2f64.powi(attempt.min(20) as i32);
    let base = base.min(MAX_BACKOFF.as_secs_f64());
    let j = policy.jitter.clamp(0.0, 1.0);
    // Uniform in [0, 1) from the (seed, attempt) pair.
    let draw = splitmix64(policy.seed ^ splitmix64(attempt as u64 + 1));
    let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64(base * (1.0 - j * u))
}

/// Run `f`, retrying on [`CkptError::Io`] with bounded exponential backoff
/// and deterministic seeded jitter (see [`retry_delay`]). Non-I/O errors
/// (corruption, incompatibility) are returned immediately — retrying cannot
/// fix them.
pub fn retry_io<T>(
    policy: RetryPolicy,
    mut f: impl FnMut() -> Result<T, CkptError>,
) -> Result<T, CkptError> {
    let attempts = policy.attempts.max(1);
    let mut attempt = 0;
    loop {
        match f() {
            Err(CkptError::Io(e)) if attempt + 1 < attempts => {
                std::thread::sleep(retry_delay(policy, attempt));
                attempt += 1;
                let _ = e;
            }
            other => return other,
        }
    }
}

/// [`atomic_write`] wrapped in [`retry_io`]. The tmp+rename sequence is
/// idempotent, so re-running the whole write after a transient failure is
/// safe — a reader never observes a torn final file.
pub fn atomic_write_retry(path: &Path, bytes: &[u8], policy: RetryPolicy) -> Result<(), CkptError> {
    retry_io(policy, || atomic_write(path, bytes))
}

/// Directory of the checkpoint set for `step` under `root`.
pub fn set_dir(root: &Path, step: u64) -> PathBuf {
    root.join(format!("step_{step:010}"))
}

/// File name of block `id` inside a set directory.
pub fn block_file_name(id: u64) -> String {
    format!("block_{id}.eckp")
}

/// Atomically write one block file into `dir`; returns its manifest entry.
pub fn write_block_file(
    dir: &Path,
    state: &BlockState,
    id: u64,
    time: f64,
    precision: Precision,
) -> Result<BlockEntry, CkptError> {
    let bytes = encode_block(state, id, time, precision);
    let crc = crc32(&bytes);
    // Seed the retry jitter by block id: every writer in a set draws a
    // different schedule, so a transient filesystem brown-out doesn't get
    // re-hit by all ranks at the same instant.
    atomic_write_retry(
        &dir.join(block_file_name(id)),
        &bytes,
        RetryPolicy::default().with_seed(id),
    )?;
    Ok(BlockEntry {
        id,
        file_bytes: bytes.len() as u64,
        crc32: crc,
    })
}

/// Atomically write the manifest into `dir`, completing the set.
pub fn write_manifest_file(dir: &Path, m: &Manifest) -> Result<(), CkptError> {
    atomic_write_retry(
        &dir.join(MANIFEST_FILE),
        &encode_manifest(m),
        RetryPolicy::default(),
    )
}

/// Read and verify the manifest of the set in `dir`.
pub fn read_manifest_file(dir: &Path) -> Result<Manifest, CkptError> {
    decode_manifest(&fs::read(dir.join(MANIFEST_FILE))?)
}

/// Read block `id` from the set in `dir`, verifying file size and CRC
/// against the manifest before decoding (`budget` caps the allocation its
/// header may imply).
pub fn read_block_from_set(
    dir: &Path,
    manifest: &Manifest,
    id: u64,
    budget: u64,
) -> Result<DecodedBlock, CkptError> {
    let entry = manifest
        .blocks
        .iter()
        .find(|b| b.id == id)
        .ok_or(CkptError::MissingBlock { id })?;
    let path = dir.join(block_file_name(id));
    let meta = fs::metadata(&path)?;
    if meta.len() != entry.file_bytes {
        return Err(CkptError::Truncated { what: "block file" });
    }
    if entry.file_bytes > budget.saturating_add(4096) {
        return Err(CkptError::InsaneDims {
            detail: format!(
                "block file of {} bytes exceeds budget {budget}",
                entry.file_bytes
            ),
        });
    }
    let bytes = fs::read(&path)?;
    let actual = crc32(&bytes);
    if actual != entry.crc32 {
        return Err(CkptError::CrcMismatch {
            what: format!("block {id}"),
            expected: entry.crc32,
            found: actual,
        });
    }
    decode_block(&bytes, budget)
}

/// Scan `root` for checkpoint-set directories and return the highest step
/// whose manifest is present and verifies, with its directory. Sets whose
/// manifest is missing or corrupt (aborted or torn checkpoints) are
/// skipped. Returns `Ok(None)` when no valid set exists (including when
/// `root` itself does not exist yet).
pub fn find_latest_checkpoint(root: &Path) -> Result<Option<(u64, PathBuf)>, CkptError> {
    find_latest_checkpoint_at_or_below(root, None)
}

/// Like [`find_latest_checkpoint`], but only considers sets at step ≤
/// `step_limit` when given — the descent primitive of the resilient
/// driver's "skip a poisoned/corrupt set and retry with the previous one"
/// path. Pruned (deleted) and partial (manifest-less) directories are
/// skipped just like torn sets.
pub fn find_latest_checkpoint_at_or_below(
    root: &Path,
    step_limit: Option<u64>,
) -> Result<Option<(u64, PathBuf)>, CkptError> {
    let mut best: Option<(u64, PathBuf)> = None;
    for (step, dir) in list_set_dirs(root)? {
        if step_limit.is_some_and(|limit| step > limit) {
            continue;
        }
        if read_manifest_file(&dir).is_err() {
            continue; // aborted / torn / partially pruned set
        }
        if best.as_ref().is_none_or(|(s, _)| step > *s) {
            best = Some((step, dir));
        }
    }
    Ok(best)
}

/// All `step_*` directories under `root` (valid or not), unordered.
/// `Ok(empty)` when `root` does not exist yet.
fn list_set_dirs(root: &Path) -> Result<Vec<(u64, PathBuf)>, CkptError> {
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(step) = name
            .to_str()
            .and_then(|n| n.strip_prefix("step_"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((step, entry.path()));
    }
    Ok(out)
}

/// Retention: keep the newest `keep` *valid* checkpoint sets under `root`
/// and delete everything older — including partial (manifest-less) debris
/// from aborted writes — except `protect` (the set currently being read,
/// which must never vanish mid-restore). Sets newer than the oldest kept
/// valid set are left alone even without a manifest: they may be a write
/// in progress. Returns the number of directories removed.
pub fn prune_checkpoint_sets(
    root: &Path,
    keep: usize,
    protect: Option<&Path>,
) -> Result<usize, CkptError> {
    assert!(keep >= 1, "retention must keep at least one set");
    let dirs = list_set_dirs(root)?;
    let mut valid_steps: Vec<u64> = dirs
        .iter()
        .filter(|(_, dir)| read_manifest_file(dir).is_ok())
        .map(|(step, _)| *step)
        .collect();
    valid_steps.sort_unstable_by(|a, b| b.cmp(a));
    let Some(&cutoff) = valid_steps.get(keep - 1) else {
        return Ok(0); // fewer valid sets than the retention target
    };
    let mut removed = 0;
    for (step, dir) in dirs {
        if step < cutoff && protect != Some(dir.as_path()) {
            fs::remove_dir_all(&dir)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> BlockState {
        let dims = GridDims::new(4, 3, 5, 1);
        let mut s = BlockState::new(dims, [0, 3, 10]);
        for (i, (x, y, z)) in dims.interior_iter().enumerate() {
            let v = i as f64 * 0.01;
            s.phi_src.set_cell(x, y, z, [v, 0.25 - v, 0.5, 0.25]);
            s.mu_src.set_cell(x, y, z, [v - 0.3, 0.3 - v]);
        }
        s
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn block_roundtrip_f64_is_bit_exact() {
        let s = sample_state();
        let bytes = encode_block(&s, 7, 1.5, Precision::F64);
        assert_eq!(bytes.len(), block_file_size(s.dims, Precision::F64));
        let d = decode_block(&bytes, DEFAULT_BYTE_BUDGET).unwrap();
        assert_eq!(d.id, 7);
        assert_eq!(d.time, 1.5);
        assert_eq!(d.precision, Precision::F64);
        assert_eq!(d.state.origin, s.origin);
        for c in 0..N_PHASES {
            for (x, y, z) in s.dims.interior_iter() {
                assert_eq!(d.state.phi_src.at(c, x, y, z), s.phi_src.at(c, x, y, z));
            }
        }
        for c in 0..N_COMP {
            for (x, y, z) in s.dims.interior_iter() {
                assert_eq!(d.state.mu_src.at(c, x, y, z), s.mu_src.at(c, x, y, z));
            }
        }
    }

    #[test]
    fn block_f32_is_half_the_payload() {
        let s = sample_state();
        let b32 = encode_block(&s, 0, 0.0, Precision::F32);
        let b64 = encode_block(&s, 0, 0.0, Precision::F64);
        assert_eq!(b32.len(), block_file_size(s.dims, Precision::F32));
        assert_eq!(b64.len(), block_file_size(s.dims, Precision::F64));
        let overhead = b32.len() - s.dims.interior_volume() * 6 * 4;
        assert_eq!(b64.len() - overhead, 2 * (b32.len() - overhead));
    }

    #[test]
    fn corrupt_block_is_rejected_with_crc_error() {
        let s = sample_state();
        let mut bytes = encode_block(&s, 0, 0.0, Precision::F32);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        match decode_block(&bytes, DEFAULT_BYTE_BUDGET) {
            Err(CkptError::CrcMismatch { .. }) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_block_is_rejected() {
        let s = sample_state();
        let bytes = encode_block(&s, 0, 0.0, Precision::F32);
        for cut in [0, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_block(&bytes[..cut], DEFAULT_BYTE_BUDGET).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn insane_dims_rejected_before_allocation() {
        // A header claiming a ~10^18-cell grid must fail fast with
        // InsaneDims, not attempt the allocation. Build a structurally
        // valid file (correct magic + CRC) with absurd dims.
        let mut out = Vec::new();
        out.extend_from_slice(BLOCK_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(8);
        out.extend_from_slice(&0u64.to_le_bytes()); // id
        for v in [1u64 << 20, 1 << 20, 1 << 20, 1] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for _ in 0..3 {
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        out.extend_from_slice(&0f64.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        match decode_block(&out, DEFAULT_BYTE_BUDGET) {
            Err(CkptError::InsaneDims { .. }) => {}
            other => panic!("expected InsaneDims, got {other:?}"),
        }
    }

    #[test]
    fn validate_dims_overflow_and_budget() {
        assert!(validate_dims(u64::MAX, u64::MAX, u64::MAX, 1, u64::MAX).is_err());
        assert!(validate_dims(0, 4, 4, 1, DEFAULT_BYTE_BUDGET).is_err());
        assert!(validate_dims(4, 4, 4, u64::MAX / 2, DEFAULT_BYTE_BUDGET).is_err());
        // A 16³ block with ghost 1 easily fits a small budget.
        assert!(validate_dims(16, 16, 16, 1, 10 << 20).is_ok());
        // ...but not a 1 KiB one.
        assert!(validate_dims(16, 16, 16, 1, 1024).is_err());
    }

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            step: 1234,
            time: 0.125,
            window_shifts: 17,
            precision: Precision::F64,
            spec: DomainSpec::directional([32, 16, 64], [2, 1, 4]),
            blocks: (0..8)
                .map(|id| BlockEntry {
                    id,
                    file_bytes: 1000 + id,
                    crc32: 0xdead_0000 | id as u32,
                })
                .collect(),
        };
        let bytes = encode_manifest(&m);
        let m2 = decode_manifest(&bytes).unwrap();
        assert_eq!(m2, m);
    }

    #[test]
    fn manifest_corruption_detected() {
        let m = Manifest {
            step: 5,
            time: 1.0,
            window_shifts: 0,
            precision: Precision::F32,
            spec: DomainSpec::directional([8, 8, 8], [1, 1, 1]),
            blocks: vec![BlockEntry {
                id: 0,
                file_bytes: 42,
                crc32: 7,
            }],
        };
        let bytes = encode_manifest(&m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_manifest(&bad).is_err(),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn set_write_find_and_read() {
        let tmp = std::env::temp_dir().join(format!("eut_ckpt_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        let s = sample_state();
        // An aborted set (blocks but no manifest) at a higher step…
        let aborted = set_dir(&tmp, 90);
        fs::create_dir_all(&aborted).unwrap();
        write_block_file(&aborted, &s, 0, 9.0, Precision::F32).unwrap();
        // …and a complete set at step 50.
        let dir = set_dir(&tmp, 50);
        fs::create_dir_all(&dir).unwrap();
        let e = write_block_file(&dir, &s, 0, 5.0, Precision::F64).unwrap();
        let m = Manifest {
            step: 50,
            time: 5.0,
            window_shifts: 2,
            precision: Precision::F64,
            spec: DomainSpec::directional([4, 3, 5], [1, 1, 1]),
            blocks: vec![e],
        };
        write_manifest_file(&dir, &m).unwrap();

        let (step, found) = find_latest_checkpoint(&tmp).unwrap().unwrap();
        assert_eq!(step, 50, "aborted set without manifest must be skipped");
        let m2 = read_manifest_file(&found).unwrap();
        assert_eq!(m2, m);
        let d = read_block_from_set(&found, &m2, 0, DEFAULT_BYTE_BUDGET).unwrap();
        assert_eq!(d.time, 5.0);
        assert!(matches!(
            read_block_from_set(&found, &m2, 3, DEFAULT_BYTE_BUDGET),
            Err(CkptError::MissingBlock { id: 3 })
        ));
        // No tmp files left behind by the atomic writes.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn find_latest_on_missing_root_is_none() {
        let p = Path::new("/nonexistent/eutectica/ckpts");
        assert!(find_latest_checkpoint(p).unwrap().is_none());
    }

    /// Minimal complete (manifest-carrying) set at `step` under `root`.
    fn write_valid_set(root: &Path, step: u64) -> PathBuf {
        let s = sample_state();
        let dir = set_dir(root, step);
        fs::create_dir_all(&dir).unwrap();
        let e = write_block_file(&dir, &s, 0, step as f64, Precision::F32).unwrap();
        write_manifest_file(
            &dir,
            &Manifest {
                step,
                time: step as f64,
                window_shifts: 0,
                precision: Precision::F32,
                spec: DomainSpec::directional([4, 3, 5], [1, 1, 1]),
                blocks: vec![e],
            },
        )
        .unwrap();
        dir
    }

    #[test]
    fn find_latest_at_or_below_descends_past_newer_sets() {
        let tmp = std::env::temp_dir().join(format!("eut_ckpt_below_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        for step in [10, 20, 30] {
            write_valid_set(&tmp, step);
        }
        let (step, _) = find_latest_checkpoint_at_or_below(&tmp, None)
            .unwrap()
            .unwrap();
        assert_eq!(step, 30);
        let (step, _) = find_latest_checkpoint_at_or_below(&tmp, Some(29))
            .unwrap()
            .unwrap();
        assert_eq!(step, 20);
        let (step, _) = find_latest_checkpoint_at_or_below(&tmp, Some(20))
            .unwrap()
            .unwrap();
        assert_eq!(step, 20);
        assert!(find_latest_checkpoint_at_or_below(&tmp, Some(9))
            .unwrap()
            .is_none());
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn prune_keeps_newest_valid_sets_and_clears_debris() {
        let tmp = std::env::temp_dir().join(format!("eut_ckpt_prune_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        for step in [10, 20, 30, 40] {
            write_valid_set(&tmp, step);
        }
        // Manifest-less debris both below and between the valid sets.
        for step in [5, 25] {
            fs::create_dir_all(set_dir(&tmp, step)).unwrap();
        }
        let removed = prune_checkpoint_sets(&tmp, 2, None).unwrap();
        // Cutoff is the 2nd-newest valid step (30): sets 10, 20 and the
        // debris at 5 and 25 go; 30 and 40 stay.
        assert_eq!(removed, 4);
        for step in [5, 10, 20, 25] {
            assert!(!set_dir(&tmp, step).exists(), "step {step} not pruned");
        }
        for step in [30, 40] {
            assert!(set_dir(&tmp, step).exists(), "step {step} wrongly pruned");
        }
        let (latest, _) = find_latest_checkpoint(&tmp).unwrap().unwrap();
        assert_eq!(latest, 40);
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn prune_never_deletes_the_protected_set() {
        let tmp = std::env::temp_dir().join(format!("eut_ckpt_protect_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        let protected = write_valid_set(&tmp, 10);
        write_valid_set(&tmp, 20);
        write_valid_set(&tmp, 30);
        let removed = prune_checkpoint_sets(&tmp, 1, Some(&protected)).unwrap();
        assert_eq!(removed, 1, "only step 20 may go");
        assert!(protected.exists(), "protected set was deleted");
        assert!(set_dir(&tmp, 30).exists());
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn prune_with_fewer_valid_sets_than_keep_is_a_noop() {
        let tmp = std::env::temp_dir().join(format!("eut_ckpt_noop_{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        write_valid_set(&tmp, 10);
        fs::create_dir_all(set_dir(&tmp, 20)).unwrap(); // partial, not valid
        assert_eq!(prune_checkpoint_sets(&tmp, 5, None).unwrap(), 0);
        assert!(set_dir(&tmp, 10).exists());
        assert!(set_dir(&tmp, 20).exists(), "debris above cutoff survives");
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn retry_io_retries_transient_io_errors_only() {
        use std::cell::Cell;
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        // Transient: two Io failures, then success.
        let calls = Cell::new(0u32);
        let out = retry_io(policy, || {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(CkptError::Io(std::io::Error::other("transient")))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.get(), 3);

        // Persistent Io: gives up after `attempts` calls.
        let calls = Cell::new(0u32);
        let out: Result<(), _> = retry_io(policy, || {
            calls.set(calls.get() + 1);
            Err(CkptError::Io(std::io::Error::other("still down")))
        });
        assert!(matches!(out, Err(CkptError::Io(_))));
        assert_eq!(calls.get(), 3);

        // Non-Io errors are never retried — corruption does not heal.
        let calls = Cell::new(0u32);
        let out: Result<(), _> = retry_io(policy, || {
            calls.set(calls.get() + 1);
            Err(CkptError::BadMagic { what: "test" })
        });
        assert!(matches!(out, Err(CkptError::BadMagic { .. })));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn retry_delay_schedule_is_deterministic_and_bounded() {
        let p = RetryPolicy::default().with_seed(7);
        let schedule: Vec<Duration> = (0..8).map(|a| retry_delay(p, a)).collect();
        // Reproducible: the same (policy, attempt) pairs give the same
        // schedule on every call.
        let again: Vec<Duration> = (0..8).map(|a| retry_delay(p, a)).collect();
        assert_eq!(schedule, again);
        // Bounded: each delay lies in ((1-jitter)·base, base] of the capped
        // exponential envelope, and is never zero.
        for (a, d) in schedule.iter().enumerate() {
            let base =
                (p.backoff.as_secs_f64() * 2f64.powi(a as i32)).min(MAX_BACKOFF.as_secs_f64());
            assert!(
                d.as_secs_f64() <= base + 1e-12,
                "attempt {a} above envelope"
            );
            assert!(
                d.as_secs_f64() >= base * (1.0 - p.jitter) - 1e-12,
                "attempt {a} below the jitter floor"
            );
            assert!(d.as_secs_f64() > 0.0);
        }
        // The envelope caps: far-out attempts saturate at MAX_BACKOFF.
        let zero_jitter = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(retry_delay(zero_jitter, 30), MAX_BACKOFF);
        // Zero jitter reduces to the pure doubling schedule.
        for a in 0..4 {
            assert_eq!(
                retry_delay(zero_jitter, a),
                Duration::from_secs_f64(
                    (zero_jitter.backoff.as_secs_f64() * 2f64.powi(a as i32))
                        .min(MAX_BACKOFF.as_secs_f64())
                )
            );
        }
    }

    #[test]
    fn retry_delay_seeds_decorrelate_ranks() {
        // Different seeds (block ids) must produce different schedules —
        // that is the whole point: no filesystem retry lockstep.
        let a: Vec<Duration> = (0..6)
            .map(|at| retry_delay(RetryPolicy::default().with_seed(1), at))
            .collect();
        let b: Vec<Duration> = (0..6)
            .map(|at| retry_delay(RetryPolicy::default().with_seed(2), at))
            .collect();
        assert_ne!(a, b);
        assert!(a.iter().zip(&b).any(|(x, y)| x != y));
    }
}
