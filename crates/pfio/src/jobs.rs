//! Job-namespaced checkpoint sets for campaign fleets.
//!
//! A campaign multiplexes many small single-block simulations onto one
//! rank universe; each job owns an isolated checkpoint namespace
//! `<root>/job_<key>/step_<n>/` built from the same `EUTECKP2` block files
//! and CRC-sealed `EUTECMF1` manifests as the distributed sets in
//! [`crate::ckpt`]. Isolation is the point: a job's rollback, retention
//! pruning, or corrupt set never touches a sibling's directory, and a
//! surviving rank can adopt a dead rank's job by reading that job's
//! namespace alone — no shared manifest couples the fleet.
//!
//! Restores are **bit-exact** at [`Precision::F64`], which the campaign
//! isolation property tests rely on: a job resumed from its own set
//! continues on the identical trajectory it would have taken undisturbed.

use std::fs;
use std::path::{Path, PathBuf};

use eutectica_blockgrid::decomp::DomainSpec;
use eutectica_core::state::BlockState;

use crate::ckpt::{self, CkptError, Manifest, Precision};

/// The checkpoint namespace of campaign job `job` under the campaign root.
pub fn job_root(root: &Path, job: u32) -> PathBuf {
    root.join(format!("job_{job:05}"))
}

/// Progress counters a job checkpoint carries alongside its fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobProgress {
    /// Completed steps at checkpoint time.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Moving-window shift count.
    pub window_shifts: u64,
}

/// A restored job checkpoint: the block fields plus the progress counters
/// to resume from.
#[derive(Debug)]
pub struct JobRestore {
    /// Restored source fields (dst synced, default boundary conditions —
    /// the caller re-applies its own before stepping).
    pub state: BlockState,
    /// Progress recorded in the set's manifest.
    pub progress: JobProgress,
}

/// Write one complete checkpoint set for `job` under its namespace:
/// block file first, manifest last (both atomic tmp+fsync+rename), so a
/// set is either complete-with-manifest or invisible to restore. Returns
/// the set directory.
pub fn write_job_checkpoint(
    root: &Path,
    job: u32,
    state: &BlockState,
    progress: JobProgress,
    precision: Precision,
) -> Result<PathBuf, CkptError> {
    let dir = ckpt::set_dir(&job_root(root, job), progress.step);
    fs::create_dir_all(&dir)?;
    let entry = ckpt::write_block_file(&dir, state, 0, progress.time, precision)?;
    let d = state.dims;
    let manifest = Manifest {
        step: progress.step,
        time: progress.time,
        window_shifts: progress.window_shifts,
        precision,
        spec: DomainSpec::directional([d.nx, d.ny, d.nz], [1, 1, 1]),
        blocks: vec![entry],
    };
    ckpt::write_manifest_file(&dir, &manifest)?;
    Ok(dir)
}

/// Restore the newest *readable* checkpoint of `job`, descending past
/// torn or corrupt sets exactly like the distributed restore driver.
/// `Ok(None)` when the job has no usable set (including a missing
/// namespace — a job that never checkpointed restarts from its initial
/// condition instead).
pub fn restore_job_latest(
    root: &Path,
    job: u32,
    budget: u64,
) -> Result<Option<JobRestore>, CkptError> {
    let jr = job_root(root, job);
    let mut limit = None;
    loop {
        let Some((step, dir)) = ckpt::find_latest_checkpoint_at_or_below(&jr, limit)? else {
            return Ok(None);
        };
        match restore_set(&dir, budget) {
            Ok(r) => return Ok(Some(r)),
            Err(_) if step > 0 => limit = Some(step - 1),
            Err(_) => return Ok(None),
        }
    }
}

/// Read and validate the single-block set in `dir`.
fn restore_set(dir: &Path, budget: u64) -> Result<JobRestore, CkptError> {
    let manifest = ckpt::read_manifest_file(dir)?;
    let block = ckpt::read_block_from_set(dir, &manifest, 0, budget)?;
    Ok(JobRestore {
        state: block.state,
        progress: JobProgress {
            step: manifest.step,
            time: manifest.time,
            window_shifts: manifest.window_shifts,
        },
    })
}

/// Retention for one job's namespace: keep the newest `keep` valid sets,
/// delete older ones (plus aborted-write debris). Sibling namespaces are
/// untouched by construction. Returns the number of directories removed.
pub fn prune_job_checkpoints(root: &Path, job: u32, keep: usize) -> Result<usize, CkptError> {
    ckpt::prune_checkpoint_sets(&job_root(root, job), keep, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;
    use eutectica_core::{N_COMP, N_PHASES};

    fn state_with_pattern(seed: u64) -> BlockState {
        let dims = GridDims::new(5, 4, 6, 1);
        let mut s = BlockState::new(dims, [0, 0, 7]);
        for (i, (x, y, z)) in dims.interior_iter().enumerate() {
            let v = ((i as u64).wrapping_mul(seed) % 997) as f64 / 997.0;
            s.phi_src
                .set_cell(x, y, z, [v * 0.5, 0.25, 0.25 - v * 0.25, 0.5 - v * 0.5]);
            s.mu_src.set_cell(x, y, z, [v - 0.5, 0.5 - v]);
        }
        s.sync_dst_from_src();
        s
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eutectica_jobckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn f64_roundtrip_is_bit_exact_and_namespaced() {
        let root = tmp("rt");
        let a = state_with_pattern(3);
        let b = state_with_pattern(11);
        let pa = JobProgress {
            step: 40,
            time: 3.2,
            window_shifts: 2,
        };
        let pb = JobProgress {
            step: 10,
            time: 0.8,
            window_shifts: 0,
        };
        write_job_checkpoint(&root, 0, &a, pa, Precision::F64).unwrap();
        write_job_checkpoint(&root, 1, &b, pb, Precision::F64).unwrap();

        let ra = restore_job_latest(&root, 0, ckpt::DEFAULT_BYTE_BUDGET)
            .unwrap()
            .unwrap();
        assert_eq!(ra.progress, pa);
        for c in 0..N_PHASES {
            for (x, y, z) in a.dims.interior_iter() {
                assert_eq!(
                    a.phi_src.at(c, x, y, z).to_bits(),
                    ra.state.phi_src.at(c, x, y, z).to_bits()
                );
            }
        }
        for c in 0..N_COMP {
            for (x, y, z) in a.dims.interior_iter() {
                assert_eq!(
                    a.mu_src.at(c, x, y, z).to_bits(),
                    ra.state.mu_src.at(c, x, y, z).to_bits()
                );
            }
        }
        assert_eq!(ra.state.origin, a.origin);
        // Sibling namespaces are independent: job 1 restores its own set.
        let rb = restore_job_latest(&root, 1, ckpt::DEFAULT_BYTE_BUDGET)
            .unwrap()
            .unwrap();
        assert_eq!(rb.progress, pb);
        // An unknown job has no set.
        assert!(restore_job_latest(&root, 9, ckpt::DEFAULT_BYTE_BUDGET)
            .unwrap()
            .is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_newest_set_descends_to_previous() {
        let root = tmp("descend");
        let s = state_with_pattern(5);
        write_job_checkpoint(
            &root,
            2,
            &s,
            JobProgress {
                step: 10,
                time: 1.0,
                window_shifts: 0,
            },
            Precision::F64,
        )
        .unwrap();
        let newest = write_job_checkpoint(
            &root,
            2,
            &s,
            JobProgress {
                step: 20,
                time: 2.0,
                window_shifts: 0,
            },
            Precision::F64,
        )
        .unwrap();
        // Corrupt the newest block file; restore must fall back to step 10.
        fs::write(newest.join(ckpt::block_file_name(0)), b"garbage").unwrap();
        let r = restore_job_latest(&root, 2, ckpt::DEFAULT_BYTE_BUDGET)
            .unwrap()
            .unwrap();
        assert_eq!(r.progress.step, 10);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn pruning_is_per_job() {
        let root = tmp("prune");
        let s = state_with_pattern(7);
        for step in [10u64, 20, 30] {
            write_job_checkpoint(
                &root,
                0,
                &s,
                JobProgress {
                    step,
                    time: step as f64,
                    window_shifts: 0,
                },
                Precision::F64,
            )
            .unwrap();
        }
        write_job_checkpoint(
            &root,
            1,
            &s,
            JobProgress {
                step: 10,
                time: 1.0,
                window_shifts: 0,
            },
            Precision::F64,
        )
        .unwrap();
        let removed = prune_job_checkpoints(&root, 0, 1).unwrap();
        assert_eq!(removed, 2);
        // Job 0 keeps only its newest set; job 1 is untouched.
        assert_eq!(
            restore_job_latest(&root, 0, ckpt::DEFAULT_BYTE_BUDGET)
                .unwrap()
                .unwrap()
                .progress
                .step,
            30
        );
        assert_eq!(
            restore_job_latest(&root, 1, ckpt::DEFAULT_BYTE_BUDGET)
                .unwrap()
                .unwrap()
                .progress
                .step,
            10
        );
        let _ = fs::remove_dir_all(&root);
    }
}
