//! Property-based tests of the checkpoint formats (legacy single-block
//! files and the fault-tolerant checkpoint-set block/manifest path).

use eutectica_blockgrid::decomp::DomainSpec;
use eutectica_blockgrid::GridDims;
use eutectica_core::simplex::project_to_simplex;
use eutectica_core::state::BlockState;
use eutectica_pfio::ckpt::{
    crc32, decode_block, decode_manifest, encode_block, encode_manifest, BlockEntry, Manifest,
    Precision, DEFAULT_BYTE_BUDGET,
};
use eutectica_pfio::{checkpoint_size, read_checkpoint, write_checkpoint};
use proptest::prelude::*;

fn make_state(nx: usize, ny: usize, nz: usize, origin: [usize; 3], seed: u64) -> BlockState {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dims = GridDims::new(nx, ny, nz, 1);
    let mut s = BlockState::new(dims, origin);
    for (x, y, z) in dims.interior_iter() {
        let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
        s.phi_src.set_cell(x, y, z, project_to_simplex(raw));
        s.mu_src.set_cell(
            x,
            y,
            z,
            [rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)],
        );
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip through the single-precision checkpoint reproduces every
    /// interior value to f32 accuracy, and the file size matches the
    /// documented layout exactly.
    #[test]
    fn checkpoint_roundtrip(
        nx in 1usize..8,
        ny in 1usize..8,
        nz in 1usize..8,
        ox in 0usize..100,
        oz in 0usize..1000,
        seed in any::<u64>(),
        time in 0.0..1e6f64,
    ) {
        let s = make_state(nx, ny, nz, [ox, 0, oz], seed);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &s, time).unwrap();
        prop_assert_eq!(buf.len(), checkpoint_size(s.dims));
        let (s2, t2) = read_checkpoint(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(t2, time);
        prop_assert_eq!(s2.dims, s.dims);
        prop_assert_eq!(s2.origin, s.origin);
        for (x, y, z) in s.dims.interior_iter() {
            for c in 0..4 {
                let a = s.phi_src.at(c, x, y, z);
                let b = s2.phi_src.at(c, x, y, z);
                prop_assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7);
            }
            for c in 0..2 {
                let a = s.mu_src.at(c, x, y, z);
                let b = s2.mu_src.at(c, x, y, z);
                prop_assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7);
            }
        }
    }

    /// Truncated checkpoints are rejected, never mis-read.
    #[test]
    fn truncation_is_detected(cut in 0usize..200, seed in any::<u64>()) {
        let s = make_state(4, 4, 4, [0, 0, 0], seed);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &s, 1.0).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let truncated = &buf[..cut];
        prop_assert!(read_checkpoint(&mut &truncated[..]).is_err());
    }

    /// Checkpoint-set block files round-trip bit-exactly in f64 (the
    /// precision the resilient restart relies on), including id, time and
    /// origin metadata.
    #[test]
    fn block_file_roundtrip_f64(
        nx in 1usize..6,
        ny in 1usize..6,
        nz in 1usize..6,
        oz in 0usize..10_000,
        id in any::<u64>(),
        seed in any::<u64>(),
        time in 0.0..1e6f64,
    ) {
        let s = make_state(nx, ny, nz, [0, 0, oz], seed);
        let bytes = encode_block(&s, id, time, Precision::F64);
        let d = decode_block(&bytes, DEFAULT_BYTE_BUDGET).unwrap();
        prop_assert_eq!(d.id, id);
        prop_assert_eq!(d.time, time);
        prop_assert_eq!(d.state.origin, s.origin);
        for (x, y, z) in s.dims.interior_iter() {
            for c in 0..4 {
                prop_assert_eq!(
                    d.state.phi_src.at(c, x, y, z).to_bits(),
                    s.phi_src.at(c, x, y, z).to_bits()
                );
            }
            for c in 0..2 {
                prop_assert_eq!(
                    d.state.mu_src.at(c, x, y, z).to_bits(),
                    s.mu_src.at(c, x, y, z).to_bits()
                );
            }
        }
    }

    /// Any single bit flip anywhere in a block file is detected: the file
    /// CRC changes (so the manifest check fires) and the decoder refuses
    /// the bytes.
    #[test]
    fn block_single_bit_flip_always_detected(
        seed in any::<u64>(),
        bit_sel in any::<u64>(),
    ) {
        let s = make_state(3, 3, 3, [0, 0, 0], seed);
        let bytes = encode_block(&s, 1, 2.0, Precision::F32);
        let clean_crc = crc32(&bytes);
        let bit = (bit_sel % (bytes.len() as u64 * 8)) as usize;
        let mut bad = bytes.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        // CRC32 detects every single-bit error.
        prop_assert_ne!(crc32(&bad), clean_crc);
        prop_assert!(decode_block(&bad, DEFAULT_BYTE_BUDGET).is_err());
    }

    /// Manifests round-trip exactly (step, time, window shifts, precision,
    /// domain spec, per-block entries).
    #[test]
    fn manifest_roundtrip(
        step in any::<u64>(),
        time in -1e9..1e9f64,
        window_shifts in any::<u64>(),
        f64_precision in any::<bool>(),
        cells in prop::array::uniform3(1usize..64),
        px in any::<bool>(),
        py in any::<bool>(),
        n_blocks in 0usize..32,
        entry_seed in any::<u64>(),
    ) {
        let m = Manifest {
            step,
            time,
            window_shifts,
            precision: if f64_precision { Precision::F64 } else { Precision::F32 },
            spec: DomainSpec {
                cells,
                blocks: [1, 1, 1],
                periodic: [px, py, false],
            },
            blocks: (0..n_blocks as u64)
                .map(|id| BlockEntry {
                    id,
                    file_bytes: entry_seed.wrapping_mul(id + 1) >> 8,
                    crc32: (entry_seed.wrapping_add(id * 31) & 0xffff_ffff) as u32,
                })
                .collect(),
        };
        let bytes = encode_manifest(&m);
        prop_assert_eq!(decode_manifest(&bytes).unwrap(), m);
    }

    /// Any single bit flip in a manifest is always detected — the restart
    /// driver can never resume from a torn or tampered manifest.
    #[test]
    fn manifest_single_bit_flip_always_detected(
        step in any::<u64>(),
        n_blocks in 1usize..8,
        bit_sel in any::<u64>(),
    ) {
        let m = Manifest {
            step,
            time: 1.5,
            window_shifts: 3,
            precision: Precision::F64,
            spec: DomainSpec::directional([16, 16, 32], [2, 2, 1]),
            blocks: (0..n_blocks as u64)
                .map(|id| BlockEntry { id, file_bytes: 100 + id, crc32: id as u32 })
                .collect(),
        };
        let bytes = encode_manifest(&m);
        let bit = (bit_sel % (bytes.len() as u64 * 8)) as usize;
        let mut bad = bytes;
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_manifest(&bad).is_err());
    }

    /// Corrupt headers never cause huge allocations: whatever 16 bytes land
    /// in the dims fields, decoding with a small budget either errors or
    /// yields a state within budget — and never OOMs/panics.
    #[test]
    fn corrupt_dims_never_alloc_beyond_budget(dims_words in prop::array::uniform4(any::<u64>())) {
        let s = make_state(2, 2, 2, [0, 0, 0], 1);
        let mut bytes = encode_block(&s, 0, 0.0, Precision::F32);
        // Overwrite the four u64 dims fields (offset: magic 8 + version 4 +
        // precision 1 + id 8 = 21) and re-seal the CRC so only the
        // dimension validation can reject.
        for (i, w) in dims_words.iter().enumerate() {
            bytes[21 + i * 8..29 + i * 8].copy_from_slice(&w.to_le_bytes());
        }
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let budget = 1u64 << 20; // 1 MiB
        if let Ok(d) = decode_block(&bytes, budget) {
            prop_assert!(d.state.dims.volume() as u64 * 96 <= budget);
        }
    }
}
