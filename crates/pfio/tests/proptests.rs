//! Property-based tests of the checkpoint format.

use eutectica_blockgrid::GridDims;
use eutectica_core::simplex::project_to_simplex;
use eutectica_core::state::BlockState;
use eutectica_pfio::{checkpoint_size, read_checkpoint, write_checkpoint};
use proptest::prelude::*;

fn make_state(nx: usize, ny: usize, nz: usize, origin: [usize; 3], seed: u64) -> BlockState {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dims = GridDims::new(nx, ny, nz, 1);
    let mut s = BlockState::new(dims, origin);
    for (x, y, z) in dims.interior_iter() {
        let raw: [f64; 4] = core::array::from_fn(|_| rng.random_range(0.0..1.0));
        s.phi_src.set_cell(x, y, z, project_to_simplex(raw));
        s.mu_src.set_cell(
            x,
            y,
            z,
            [rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0)],
        );
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip through the single-precision checkpoint reproduces every
    /// interior value to f32 accuracy, and the file size matches the
    /// documented layout exactly.
    #[test]
    fn checkpoint_roundtrip(
        nx in 1usize..8,
        ny in 1usize..8,
        nz in 1usize..8,
        ox in 0usize..100,
        oz in 0usize..1000,
        seed in any::<u64>(),
        time in 0.0..1e6f64,
    ) {
        let s = make_state(nx, ny, nz, [ox, 0, oz], seed);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &s, time).unwrap();
        prop_assert_eq!(buf.len(), checkpoint_size(s.dims));
        let (s2, t2) = read_checkpoint(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(t2, time);
        prop_assert_eq!(s2.dims, s.dims);
        prop_assert_eq!(s2.origin, s.origin);
        for (x, y, z) in s.dims.interior_iter() {
            for c in 0..4 {
                let a = s.phi_src.at(c, x, y, z);
                let b = s2.phi_src.at(c, x, y, z);
                prop_assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7);
            }
            for c in 0..2 {
                let a = s.mu_src.at(c, x, y, z);
                let b = s2.mu_src.at(c, x, y, z);
                prop_assert!((a - b).abs() <= a.abs() * 1e-7 + 1e-7);
            }
        }
    }

    /// Truncated checkpoints are rejected, never mis-read.
    #[test]
    fn truncation_is_detected(cut in 0usize..200, seed in any::<u64>()) {
        let s = make_state(4, 4, 4, [0, 0, 0], seed);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &s, 1.0).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let truncated = &buf[..cut];
        prop_assert!(read_checkpoint(&mut &truncated[..]).is_err());
    }
}
