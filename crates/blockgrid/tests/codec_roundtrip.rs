//! Property tests for the migration field codec: serialize → ship → decode
//! must be *bit*-identical for both SoA and AoS layouts, for arbitrary
//! dimensions within the byte budget, including ghost layers and arbitrary
//! f64 bit patterns (NaN payloads, signed zeros, subnormals).

use eutectica_blockgrid::codec::{
    crc32, decode_aos, decode_soa, encode_aos, encode_soa, validate_field_dims, CodecError,
    DEFAULT_FIELD_BYTE_BUDGET,
};
use eutectica_blockgrid::field::{AosField, SoaField};
use eutectica_blockgrid::GridDims;
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = GridDims> {
    (1usize..8, 1usize..8, 1usize..8, 1usize..4)
        .prop_map(|(nx, ny, nz, g)| GridDims::new(nx, ny, nz, g))
}

/// Arbitrary f64 *bit patterns* — the codec must preserve every one of the
/// 2^64 possible values, not just the numerically well-behaved ones.
fn fill_bits<const NC: usize>(raw: &mut [f64], seed: u64) {
    let mut s = seed | 1;
    for v in raw.iter_mut() {
        // xorshift64* — deterministic, covers specials by construction below.
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        *v = f64::from_bits(s.wrapping_mul(0x2545_f491_4f6c_dd1d));
    }
    if raw.len() >= 4 {
        raw[0] = f64::from_bits(0x7ff8_0000_0000_0001); // NaN with payload
        raw[1] = -0.0;
        raw[2] = f64::NEG_INFINITY;
        raw[3] = f64::from_bits(1); // smallest subnormal
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SoA serialize → migrate → deserialize is bit-identical, ghosts
    /// included, for arbitrary in-budget dims.
    #[test]
    fn soa_roundtrip_bit_identical(dims in arb_dims(), seed in any::<u64>()) {
        let mut f = SoaField::<4>::new(dims, [0.0; 4]);
        fill_bits::<4>(f.raw_mut(), seed);
        let bytes = encode_soa(&f);
        let back = decode_soa::<4>(&bytes, DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        prop_assert_eq!(back.dims(), dims);
        for (a, b) in f.raw().iter().zip(back.raw()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// AoS serialize → migrate → deserialize is bit-identical, ghosts
    /// included, for arbitrary in-budget dims.
    #[test]
    fn aos_roundtrip_bit_identical(dims in arb_dims(), seed in any::<u64>()) {
        let mut f = AosField::<2>::new(dims, [0.0; 2]);
        fill_bits::<2>(f.raw_mut(), seed);
        let bytes = encode_aos(&f);
        let back = decode_aos::<2>(&bytes, DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        prop_assert_eq!(back.dims(), dims);
        for (a, b) in f.raw().iter().zip(back.raw()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The two layouts agree through the codec: encoding an SoA field,
    /// decoding it, and converting to AoS equals converting first and going
    /// through the AoS codec — the wire format hides no layout-dependent
    /// transformation.
    #[test]
    fn layouts_commute_with_codec(dims in arb_dims(), seed in any::<u64>()) {
        let mut f = SoaField::<3>::new(dims, [0.0; 3]);
        fill_bits::<3>(f.raw_mut(), seed);
        let via_soa = decode_soa::<3>(&encode_soa(&f), DEFAULT_FIELD_BYTE_BUDGET)
            .unwrap()
            .to_aos();
        let via_aos =
            decode_aos::<3>(&encode_aos(&f.to_aos()), DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        for (a, b) in via_soa.raw().iter().zip(via_aos.raw()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Any single-bit flip anywhere in the encoded stream is detected —
    /// the decode fails rather than resuming physics on corrupted bits.
    #[test]
    fn single_bit_flip_never_decodes(dims in arb_dims(), seed in any::<u64>(), flip in any::<u64>()) {
        let mut f = SoaField::<2>::new(dims, [0.0; 2]);
        fill_bits::<2>(f.raw_mut(), seed);
        let mut bytes = encode_soa(&f);
        let pos = flip as usize % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(decode_soa::<2>(&bytes, DEFAULT_FIELD_BYTE_BUDGET).is_err());
    }

    /// Truncation at any point is detected.
    #[test]
    fn truncation_never_decodes(dims in arb_dims(), seed in any::<u64>(), cut in any::<u64>()) {
        let mut f = SoaField::<1>::new(dims, [0.0]);
        fill_bits::<1>(f.raw_mut(), seed);
        let bytes = encode_soa(&f);
        let keep = cut as usize % bytes.len(); // strictly shorter than full
        prop_assert!(decode_soa::<1>(&bytes[..keep], DEFAULT_FIELD_BYTE_BUDGET).is_err());
    }

    /// Dimension validation accepts exactly the in-budget headers and
    /// rejects over-budget ones before allocation.
    #[test]
    fn budget_gate_is_exact(nx in 1u64..64, ny in 1u64..64, nz in 1u64..64, g in 0u64..4, nc in 1u64..8) {
        let vol = (nx + 2 * g) * (ny + 2 * g) * (nz + 2 * g);
        let bytes = vol * nc * 8;
        prop_assert!(validate_field_dims(nx, ny, nz, g, nc, bytes).is_ok());
        prop_assert!(matches!(
            validate_field_dims(nx, ny, nz, g, nc, bytes - 1),
            Err(CodecError::InsaneDims { .. })
        ));
    }
}

#[test]
fn crc_matches_reference_vectors() {
    // Same IEEE polynomial/vectors the checkpoint format asserts — the two
    // subsystems must stay interoperable.
    assert_eq!(crc32(b""), 0);
    assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    assert_eq!(
        crc32(b"The quick brown fox jumps over the lazy dog"),
        0x414f_a339
    );
}
