//! Property-based tests for fields, boundary handling and ghost exchange.

use eutectica_blockgrid::boundary::{Bc, BoundarySpec};
use eutectica_blockgrid::field::SoaField;
use eutectica_blockgrid::ghost::{
    local_periodic_exchange, pack, pack_region, recv_region, send_region, unpack, unpack_region,
};
use eutectica_blockgrid::{Face, GridDims};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = GridDims> {
    (2usize..6, 2usize..6, 2usize..6, 1usize..3)
        .prop_map(|(nx, ny, nz, g)| GridDims::new(nx, ny, nz, g))
}

fn filled_field(dims: GridDims, seed: u64) -> SoaField<3> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut f = SoaField::<3>::new(dims, [0.0; 3]);
    for c in 0..3 {
        for v in f.comp_mut(c) {
            *v = rng.random_range(-10.0..10.0);
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pack → unpack into the opposite face reproduces exactly the values a
    /// periodic BoundarySpec would write (the messages implement periodic
    /// wrap correctly for every geometry and ghost width).
    #[test]
    fn exchange_equals_periodic_bc(dims in arb_dims(), seed in any::<u64>()) {
        let mut via_msgs = filled_field(dims, seed);
        for axis in 0..3 {
            local_periodic_exchange(&mut via_msgs, axis);
        }
        let mut via_bc = filled_field(dims, seed);
        BoundarySpec::uniform(Bc::Periodic).apply(&mut via_bc);
        for c in 0..3 {
            prop_assert_eq!(via_msgs.comp(c), via_bc.comp(c));
        }
    }

    /// A pack/unpack round trip through any face writes exactly the packed
    /// data (no corruption, no out-of-region writes).
    #[test]
    fn pack_unpack_preserves_everything_else(dims in arb_dims(), seed in any::<u64>(), face_id in 0usize..6) {
        let face = Face::ALL[face_id];
        let src = filled_field(dims, seed);
        let mut dst = filled_field(dims, seed.wrapping_add(1));
        let before = dst.clone();
        let mut buf = Vec::new();
        pack(&src, face, &mut buf);
        unpack(&mut dst, face.opposite(), &buf);
        // Cells outside the receive region are untouched.
        let region = recv_region(dims, face.opposite());
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let inside = (region.range[0][0]..region.range[0][1]).contains(&x)
                        && (region.range[1][0]..region.range[1][1]).contains(&y)
                        && (region.range[2][0]..region.range[2][1]).contains(&z);
                    for c in 0..3 {
                        if !inside {
                            prop_assert_eq!(dst.at(c, x, y, z), before.at(c, x, y, z));
                        }
                    }
                }
            }
        }
    }

    /// Send and receive regions of paired faces have matching shapes, so
    /// any two equal blocks can exchange.
    #[test]
    fn paired_regions_have_equal_volume(dims in arb_dims(), face_id in 0usize..6) {
        let face = Face::ALL[face_id];
        let s = send_region(dims, face);
        let r = recv_region(dims, face.opposite());
        prop_assert_eq!(s.volume(), r.volume());
        for axis in 0..3 {
            prop_assert_eq!(
                s.range[axis][1] - s.range[axis][0],
                r.range[axis][1] - r.range[axis][0]
            );
        }
    }

    /// pack_region/unpack_region round-trip over the same region is the
    /// identity.
    #[test]
    fn region_roundtrip_is_identity(dims in arb_dims(), seed in any::<u64>(), face_id in 0usize..6) {
        let face = Face::ALL[face_id];
        let region = send_region(dims, face);
        let f = filled_field(dims, seed);
        let mut buf = Vec::new();
        pack_region(&f, region, &mut buf);
        let mut g = f.clone();
        unpack_region(&mut g, region, &buf);
        for c in 0..3 {
            prop_assert_eq!(f.comp(c), g.comp(c));
        }
    }

    /// shift_z_down drops the bottom slice, keeps the order of the rest and
    /// fills the top with the given value.
    #[test]
    fn shift_preserves_slice_order(dims in arb_dims(), seed in any::<u64>(), fill in -5.0..5.0f64) {
        let f = filled_field(dims, seed);
        let mut shifted = f.clone();
        shifted.shift_z_down([fill; 3]);
        let g = dims.ghost;
        for z in 0..dims.nz - 1 {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    for c in 0..3 {
                        prop_assert_eq!(
                            shifted.at(c, x + g, y + g, z + g),
                            f.at(c, x + g, y + g, z + g + 1)
                        );
                    }
                }
            }
        }
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                for c in 0..3 {
                    prop_assert_eq!(shifted.at(c, x + g, y + g, g + dims.nz - 1), fill);
                }
            }
        }
    }

    /// SoA ↔ AoS conversion round-trips exactly.
    #[test]
    fn layout_roundtrip(dims in arb_dims(), seed in any::<u64>()) {
        let f = filled_field(dims, seed);
        let back = f.to_aos().to_soa();
        for c in 0..3 {
            prop_assert_eq!(f.comp(c), back.comp(c));
        }
    }
}
