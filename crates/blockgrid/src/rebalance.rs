//! Dynamic load rebalancing: cost model, trigger policy, and migration
//! planning.
//!
//! The paper's load balancing (Sec. 5.1.2) is *static*: blocks are weighted
//! once by region composition and assigned before the run. The moving-window
//! frozen-temperature setup, however, drags the solidification front through
//! the block structure for the whole run, so any static assignment drifts
//! toward imbalance. This module supplies the rank-agnostic half of the
//! dynamic answer (waLBerla-style runtime block migration):
//!
//! * [`CostModel`] — per-block cost estimates fed by measured sweep seconds
//!   (EWMA-smoothed), with a region-composition prior for blocks that have
//!   never been timed (cold start, or freshly received migrants);
//! * [`blend_weights`] — reconciles measured and prior-only blocks onto one
//!   scale so they can be balanced together;
//! * [`RebalancePolicy`] — when to check, when to act, how to assign;
//! * [`plan_rebalance`] — the target assignment from the existing weighted
//!   balancers in [`crate::balance`], post-processed by a
//!   migration-minimizing diff against the current placement.
//!
//! The communication half (gather → decide → broadcast → p2p migration) lives
//! in `eutectica-core::timeloop`, which owns the ranks; everything here is
//! pure and deterministic so the planning step can run on rank 0 and its
//! outcome broadcast verbatim.

use std::collections::BTreeMap;

use crate::balance;

/// Which weighted balancer produces the target assignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// Contiguous id-ranges with a binary-searched bottleneck
    /// ([`balance::assign_contiguous_weighted`]) — preserves id locality,
    /// bounded quality on skewed weights.
    ContiguousWeighted,
    /// Longest-processing-time greedy ([`balance::assign_lpt`]) — best
    /// bottleneck on skewed weights, ignores id locality.
    Lpt,
}

/// Configuration of the dynamic rebalancer.
///
/// Attached to a `DistributedSim` via `set_rebalance_policy`; every rank must
/// attach an identical policy (the trigger is collective).
#[derive(Clone, Debug)]
pub struct RebalancePolicy {
    /// Run the collective imbalance check every this many steps (0 disables
    /// the periodic check; forced plans still fire).
    pub every: usize,
    /// Rebalance when measured `max/avg` rank load exceeds this (e.g. 1.15).
    pub threshold: f64,
    /// EWMA smoothing factor in `(0, 1]` for measured per-block sweep
    /// seconds; 1.0 keeps only the newest sample.
    pub alpha: f64,
    /// A planned move is cancelled if keeping the block on its current rank
    /// leaves every rank within `(1 + slack)` of the plan's bottleneck.
    pub slack: f64,
    /// Balancer used for the target assignment.
    pub strategy: BalanceStrategy,
    /// Forced migration plans: at step `s`, adopt the given placement
    /// unconditionally (adversarial/testing hook; validated at plan time).
    pub forced: Vec<(u64, Vec<usize>)>,
}

impl RebalancePolicy {
    /// Policy checking every `every` steps against `threshold`, with
    /// defaults: `alpha = 0.3`, `slack = 0.05`, LPT strategy, no forced
    /// plans.
    pub fn new(every: usize, threshold: f64) -> Self {
        RebalancePolicy {
            every,
            threshold,
            alpha: 0.3,
            slack: 0.05,
            strategy: BalanceStrategy::Lpt,
            forced: Vec::new(),
        }
    }

    /// Replace the balancing strategy.
    pub fn with_strategy(mut self, strategy: BalanceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Append a forced plan: at step `step`, migrate to `placement`
    /// (block id → rank) regardless of measured imbalance.
    pub fn with_forced_plan(mut self, step: u64, placement: Vec<usize>) -> Self {
        self.forced.push((step, placement));
        self
    }

    /// The forced placement registered for `step`, if any.
    pub fn forced_at(&self, step: u64) -> Option<&[usize]> {
        self.forced
            .iter()
            .find(|(s, _)| *s == step)
            .map(|(_, p)| p.as_slice())
    }
}

/// Cost knowledge about one block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEntry {
    /// EWMA of measured sweep seconds per step, if the block has ever been
    /// timed on some rank. Travels with the block when it migrates.
    pub measured: Option<f64>,
    /// Region-composition prior (arbitrary units — e.g. estimated sweep
    /// seconds from `regions::block_weight`); used until measurements exist.
    pub prior: f64,
}

/// Per-block cost model held by each rank for the blocks it currently owns.
#[derive(Clone, Debug)]
pub struct CostModel {
    alpha: f64,
    entries: BTreeMap<usize, CostEntry>,
}

impl CostModel {
    /// Empty model with EWMA factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        CostModel {
            alpha,
            entries: BTreeMap::new(),
        }
    }

    /// Start tracking `block` with cold-start prior `prior` (no measurement).
    pub fn track(&mut self, block: usize, prior: f64) {
        self.entries.insert(
            block,
            CostEntry {
                measured: None,
                prior,
            },
        );
    }

    /// Stop tracking `block` (it migrated away), returning its entry so the
    /// sender can ship accumulated knowledge with the block.
    pub fn untrack(&mut self, block: usize) -> Option<CostEntry> {
        self.entries.remove(&block)
    }

    /// Adopt `entry` for `block` (it migrated here) — measurements made by
    /// the previous owner keep informing the model.
    pub fn adopt(&mut self, block: usize, entry: CostEntry) {
        self.entries.insert(block, entry);
    }

    /// Replace `block`'s cold-start prior, keeping any measurement. Lets a
    /// caller with better rate knowledge (e.g. a kernel autotuner's warmup
    /// measurements) re-seed stale priors before a planning epoch; a no-op
    /// for untracked blocks.
    pub fn set_prior(&mut self, block: usize, prior: f64) {
        if let Some(e) = self.entries.get_mut(&block) {
            e.prior = prior;
        }
    }

    /// Fold a new measurement (sweep seconds per step) into the EWMA.
    pub fn observe(&mut self, block: usize, seconds: f64) {
        if let Some(e) = self.entries.get_mut(&block) {
            e.measured = Some(match e.measured {
                Some(prev) => prev + self.alpha * (seconds - prev),
                None => seconds,
            });
        }
    }

    /// Current entry for `block`, if tracked.
    pub fn entry(&self, block: usize) -> Option<&CostEntry> {
        self.entries.get(&block)
    }

    /// Snapshot of all tracked blocks as `(id, measured, prior)`, ascending
    /// by id — the gather payload for the collective imbalance check.
    pub fn snapshot(&self) -> Vec<(usize, Option<f64>, f64)> {
        self.entries
            .iter()
            .map(|(&id, e)| (id, e.measured, e.prior))
            .collect()
    }
}

/// Reconcile measured and prior-only blocks onto one weight scale.
///
/// Measured blocks use their EWMA seconds directly. Prior-only blocks use
/// `prior × ratio`, where `ratio = Σ measured / Σ prior` over the measured
/// blocks — i.e. the priors are rescaled by how the measured blocks' actual
/// cost compares to their own priors, so mixed populations balance sensibly.
/// With no measurements (cold start) the priors are used as-is. Blocks
/// absent from `entries` (should not happen) get the mean weight.
pub fn blend_weights(entries: &[(usize, Option<f64>, f64)], n_blocks: usize) -> Vec<f64> {
    let mut measured_sum = 0.0;
    let mut prior_sum = 0.0;
    for &(_, m, p) in entries {
        if let Some(m) = m {
            measured_sum += m;
            prior_sum += p;
        }
    }
    let ratio = if measured_sum > 0.0 && prior_sum > 0.0 {
        measured_sum / prior_sum
    } else {
        1.0
    };
    let mut weights = vec![f64::NAN; n_blocks];
    for &(id, m, p) in entries {
        if id < n_blocks {
            weights[id] = match m {
                Some(m) => m,
                None => p * ratio,
            };
        }
    }
    let known: Vec<f64> = weights.iter().copied().filter(|w| w.is_finite()).collect();
    let mean = if known.is_empty() {
        1.0
    } else {
        known.iter().sum::<f64>() / known.len() as f64
    };
    for w in &mut weights {
        if !w.is_finite() || *w <= 0.0 {
            *w = mean.max(f64::MIN_POSITIVE);
        }
    }
    weights
}

/// One block changing owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMove {
    /// Global block id.
    pub block: usize,
    /// Current owner rank.
    pub from: usize,
    /// New owner rank.
    pub to: usize,
}

/// A planned placement change.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    /// New placement: block id → owner rank.
    pub placement: Vec<usize>,
    /// Blocks that change owner, ascending by block id.
    pub moves: Vec<BlockMove>,
}

impl MigrationPlan {
    /// True when the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Diff two placements into the move list, ascending by block id.
pub fn moves_between(current: &[usize], target: &[usize]) -> Vec<BlockMove> {
    assert_eq!(current.len(), target.len());
    current
        .iter()
        .zip(target)
        .enumerate()
        .filter(|(_, (&c, &t))| c != t)
        .map(|(block, (&from, &to))| BlockMove { block, from, to })
        .collect()
}

/// Compute a rebalancing plan: target assignment from `strategy`, then a
/// migration-minimizing diff against `current`.
///
/// The diff pass walks blocks in ascending id (deterministic) and cancels a
/// planned move when keeping the block on its current rank leaves every rank
/// within `(1 + slack)` of the target's bottleneck load — cheap migrations
/// only. A cancellation is refused when it would leave the target rank with
/// zero blocks: every rank must keep at least one block, because the
/// moving-window shift is a collective that every block-owning rank joins.
pub fn plan_rebalance(
    weights: &[f64],
    current: &[usize],
    n_ranks: usize,
    strategy: BalanceStrategy,
    slack: f64,
) -> MigrationPlan {
    assert_eq!(weights.len(), current.len());
    let target = match strategy {
        BalanceStrategy::ContiguousWeighted => {
            balance::assign_contiguous_weighted(weights, n_ranks)
        }
        BalanceStrategy::Lpt => balance::assign_lpt(weights, n_ranks),
    };
    let placement = minimize_moves(weights, current, &target, n_ranks, slack);
    let moves = moves_between(current, &placement);
    MigrationPlan { placement, moves }
}

/// Re-home the blocks of dead ranks onto the survivors — the
/// shrink-and-continue planner. Survivors keep every block they already own
/// (their state is intact or restorable in place; moving it would cost
/// migrations for no balance reason a later rebalance cannot recover), and
/// each orphaned block is assigned longest-processing-time-first to the
/// least-loaded survivor.
///
/// Deterministic: orphans are visited heaviest-first with ascending id as
/// the tie-break, and load ties pick the lowest survivor rank — every
/// survivor computes the identical plan from the replicated weights, so no
/// coordinator broadcast is needed during recovery.
///
/// # Panics
/// Panics if `survivors` is empty.
pub fn plan_shrink(weights: &[f64], current: &[usize], survivors: &[usize]) -> MigrationPlan {
    assert_eq!(weights.len(), current.len());
    assert!(!survivors.is_empty(), "cannot shrink to zero ranks");
    let alive = |r: usize| survivors.contains(&r);
    let mut placement = current.to_vec();
    let mut load: BTreeMap<usize, f64> = survivors.iter().map(|&r| (r, 0.0)).collect();
    for (b, &r) in current.iter().enumerate() {
        if alive(r) {
            *load.get_mut(&r).unwrap() += weights[b];
        }
    }
    let mut orphans: Vec<usize> = (0..current.len()).filter(|&b| !alive(current[b])).collect();
    // Heaviest first, ascending id on weight ties (LPT).
    orphans.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for b in orphans {
        let (&home, _) = load
            .iter()
            .min_by(|(ra, la), (rb, lb)| {
                la.partial_cmp(lb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ra.cmp(rb))
            })
            .expect("survivor set is non-empty");
        placement[b] = home;
        *load.get_mut(&home).unwrap() += weights[b];
    }
    let moves = moves_between(current, &placement);
    MigrationPlan { placement, moves }
}

/// Cancel moves from `target` whose reversal keeps the bottleneck within
/// `(1 + slack)` of the target's own bottleneck. Deterministic: blocks are
/// visited in ascending id. Never empties a rank.
fn minimize_moves(
    weights: &[f64],
    current: &[usize],
    target: &[usize],
    n_ranks: usize,
    slack: f64,
) -> Vec<usize> {
    let mut out = target.to_vec();
    let mut load = vec![0.0f64; n_ranks];
    let mut count = vec![0usize; n_ranks];
    for (b, &r) in out.iter().enumerate() {
        load[r] += weights[b];
        count[r] += 1;
    }
    let bottleneck = load.iter().fold(0.0f64, |m, &v| m.max(v));
    let cap = bottleneck * (1.0 + slack.max(0.0));
    // Global short-circuit: if the *current* placement already sits within
    // the slack of the target's bottleneck (and idles no rank), keep it
    // wholesale. This is what makes a perfectly tied population a strict
    // no-op: greedy per-block cancellation cannot undo a cosmetic reshuffle
    // (each single reversal transiently overloads a rank), but the whole
    // placement is trivially as good as the target.
    let mut cur_load = vec![0.0f64; n_ranks];
    let mut cur_count = vec![0usize; n_ranks];
    for (b, &r) in current.iter().enumerate() {
        if r < n_ranks {
            cur_load[r] += weights[b];
            cur_count[r] += 1;
        } else {
            cur_load.clear(); // foreign rank: disable the short-circuit
            break;
        }
    }
    if cur_load.len() == n_ranks
        && cur_count.iter().all(|&c| c >= 1)
        && cur_load.iter().fold(0.0f64, |m, &v| m.max(v)) <= cap
    {
        return current.to_vec();
    }
    for b in 0..out.len() {
        let (cur, tgt) = (current[b], out[b]);
        if cur == tgt {
            continue;
        }
        if count[tgt] > 1 && load[cur] + weights[b] <= cap {
            load[tgt] -= weights[b];
            count[tgt] -= 1;
            load[cur] += weights[b];
            count[cur] += 1;
            out[b] = cur;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::imbalance;

    #[test]
    fn ewma_and_migration_of_entries() {
        let mut m = CostModel::new(0.5);
        m.track(3, 2.0);
        assert_eq!(m.entry(3).unwrap().measured, None);
        m.observe(3, 4.0);
        assert_eq!(m.entry(3).unwrap().measured, Some(4.0));
        m.observe(3, 2.0);
        assert_eq!(m.entry(3).unwrap().measured, Some(3.0));
        // Observation of an untracked block is ignored (stale timing after
        // the block migrated away must not resurrect it).
        m.observe(7, 1.0);
        assert!(m.entry(7).is_none());
        let e = m.untrack(3).unwrap();
        let mut m2 = CostModel::new(0.5);
        m2.adopt(3, e);
        assert_eq!(m2.entry(3).unwrap().measured, Some(3.0));
        assert_eq!(m2.snapshot(), vec![(3, Some(3.0), 2.0)]);
    }

    #[test]
    fn blend_rescales_priors_to_measured_scale() {
        // Two measured blocks run 10× slower than their priors predicted;
        // the unmeasured block's prior is rescaled by the same factor.
        let entries = vec![(0, Some(10.0), 1.0), (1, Some(30.0), 3.0), (2, None, 2.0)];
        let w = blend_weights(&entries, 3);
        assert_eq!(w, vec![10.0, 30.0, 20.0]);
        // Cold start: priors pass through unscaled.
        let cold = vec![(0, None, 1.5), (1, None, 2.5)];
        assert_eq!(blend_weights(&cold, 2), vec![1.5, 2.5]);
        // Missing / non-finite entries degrade to the mean, never 0 or NaN.
        let holey = vec![(0, Some(4.0), 1.0)];
        let w = blend_weights(&holey, 2);
        assert_eq!(w, vec![4.0, 4.0]);
    }

    #[test]
    fn plan_reaches_balance_and_minimizes_moves() {
        // One hot block (the front) on an otherwise uniform column.
        let mut weights = vec![1.0; 12];
        weights[1] = 4.0;
        let current = vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]; // static triples: rank 0 overloaded
        let before = imbalance(&weights, &current, 4);
        assert!(before > 1.5, "scenario should start imbalanced: {before}");
        let plan = plan_rebalance(&weights, &current, 4, BalanceStrategy::Lpt, 0.05);
        let after = imbalance(&weights, &plan.placement, 4);
        assert!(after <= 1.15, "LPT should even this out: {after}");
        // Every rank keeps at least one block.
        for r in 0..4 {
            assert!(plan.placement.contains(&r));
        }
        // Moves are exactly the diff, ascending by id.
        assert_eq!(plan.moves, moves_between(&current, &plan.placement));
        for w in plan.moves.windows(2) {
            assert!(w[0].block < w[1].block);
        }
    }

    #[test]
    fn planning_is_deterministic_and_stable_on_ties() {
        let weights = vec![1.0; 8];
        let current = vec![0, 0, 1, 1, 2, 2, 3, 3];
        // Already perfectly balanced: the move-minimizer must cancel every
        // cosmetic reshuffle LPT proposes, yielding the identity plan.
        let plan = plan_rebalance(&weights, &current, 4, BalanceStrategy::Lpt, 0.0);
        assert!(plan.is_empty(), "balanced ties must not migrate: {plan:?}");
        assert_eq!(plan.placement, current);
        let again = plan_rebalance(&weights, &current, 4, BalanceStrategy::Lpt, 0.0);
        assert_eq!(plan.placement, again.placement);
    }

    #[test]
    fn minimizer_never_empties_a_rank() {
        // Target puts the single heavy block alone on rank 1; the slack is
        // huge so the minimizer wants to cancel everything — but cancelling
        // the move of block 2 would empty rank 1.
        let weights = vec![1.0, 1.0, 9.0];
        let current = vec![0, 0, 0];
        let plan = plan_rebalance(&weights, &current, 2, BalanceStrategy::Lpt, 1e9);
        for r in 0..2 {
            assert!(
                plan.placement.contains(&r),
                "rank {r} emptied: {:?}",
                plan.placement
            );
        }
    }

    #[test]
    fn forced_plans_resolve_by_step() {
        let p = RebalancePolicy::new(0, 1.15)
            .with_forced_plan(3, vec![1, 0])
            .with_forced_plan(5, vec![0, 1]);
        assert_eq!(p.forced_at(3), Some(&[1usize, 0][..]));
        assert_eq!(p.forced_at(5), Some(&[0usize, 1][..]));
        assert_eq!(p.forced_at(4), None);
    }

    #[test]
    fn shrink_rehomes_only_orphans_lpt() {
        // Rank 1 died; its blocks (3, 4, 5) must land on survivors 0 and 2,
        // heaviest orphan first onto the least-loaded survivor. Survivors'
        // own blocks never move.
        let weights = vec![1.0, 1.0, 1.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0];
        let current = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let plan = plan_shrink(&weights, &current, &[0, 2]);
        for (b, (&old, &new)) in current.iter().zip(&plan.placement).enumerate() {
            if old != 1 {
                assert_eq!(old, new, "survivor block {b} moved");
            } else {
                assert!([0, 2].contains(&new), "orphan {b} on dead rank");
            }
        }
        // LPT: block 3 (w=4) → rank 0 (load tie 3=3, lowest rank wins);
        // block 4 (w=2) → rank 2 (3 < 7); block 5 (w=1) → rank 2 (5 < 7).
        assert_eq!(plan.placement[3], 0);
        assert_eq!(plan.placement[4], 2);
        assert_eq!(plan.placement[5], 2);
        assert_eq!(plan.moves.len(), 3);
        assert!(plan.moves.iter().all(|m| m.from == 1));
    }

    #[test]
    fn shrink_is_deterministic_and_balances_ties() {
        let weights = vec![1.0; 8];
        let current = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let a = plan_shrink(&weights, &current, &[0, 2, 3]);
        let b = plan_shrink(&weights, &current, &[0, 2, 3]);
        assert_eq!(a.placement, b.placement);
        // The two orphans (rank 1's blocks) split across the least-loaded
        // survivors; no survivor ends with more than 3 blocks.
        for r in [0usize, 2, 3] {
            let n = a.placement.iter().filter(|&&p| p == r).count();
            assert!((2..=3).contains(&n), "rank {r} owns {n}");
        }
        assert!(a.placement.iter().all(|&r| r != 1));
    }

    #[test]
    fn shrink_to_single_survivor_takes_everything() {
        let weights = vec![1.0, 2.0, 3.0, 4.0];
        let current = vec![0, 1, 2, 3];
        let plan = plan_shrink(&weights, &current, &[2]);
        assert_eq!(plan.placement, vec![2, 2, 2, 2]);
        assert_eq!(plan.moves.len(), 3);
    }
}
