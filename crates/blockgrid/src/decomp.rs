//! Static domain decomposition into equally sized blocks.
//!
//! waLBerla splits the domain into "equally sized chunks, called blocks" and
//! distributes them over processes so that "every process holds information
//! only about local and adjacent blocks" (Sec. 3.1). The decomposition here
//! is computed once (the paper's separate initialization phase that is "
//! executed independently of the actual simulation") and every process can
//! derive its local block set and neighbor topology from it without global
//! state.

use crate::{Face, GridDims};
use serde::{Deserialize, Serialize};

/// Global domain description.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Total interior cells per axis.
    pub cells: [usize; 3],
    /// Number of blocks per axis; must divide `cells` exactly.
    pub blocks: [usize; 3],
    /// Periodicity per axis (Fig. 2: periodic in x and y, open in z).
    pub periodic: [bool; 3],
}

impl DomainSpec {
    /// Directional-solidification default: periodic side walls, open z.
    pub fn directional(cells: [usize; 3], blocks: [usize; 3]) -> Self {
        Self {
            cells,
            blocks,
            periodic: [true, true, false],
        }
    }

    /// Cells per block per axis.
    pub fn block_cells(&self) -> [usize; 3] {
        [
            self.cells[0] / self.blocks[0],
            self.cells[1] / self.blocks[1],
            self.cells[2] / self.blocks[2],
        ]
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.iter().product()
    }
}

/// One block of the decomposition.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDesc {
    /// Dense block id in `[0, num_blocks)`, x-fastest ordering.
    pub id: usize,
    /// Block coordinates in the block grid.
    pub coords: [usize; 3],
    /// Interior cells of this block.
    pub cells: [usize; 3],
    /// Global cell coordinates of this block's first interior cell.
    pub origin: [usize; 3],
    /// Face-neighbor block ids (`None` at non-periodic physical boundaries).
    pub neighbors: [Option<usize>; 6],
}

impl BlockDesc {
    /// Grid geometry of this block with ghost width `ghost`.
    pub fn dims(&self, ghost: usize) -> GridDims {
        GridDims::new(self.cells[0], self.cells[1], self.cells[2], ghost)
    }
}

/// The complete decomposition: block descriptors plus rank assignment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Decomposition {
    /// The domain this decomposes.
    pub spec: DomainSpec,
    blocks: Vec<BlockDesc>,
}

impl Decomposition {
    /// Decompose `spec` into blocks.
    ///
    /// # Panics
    /// Panics if the block counts do not divide the cell counts exactly
    /// (waLBerla requires equally sized blocks).
    pub fn new(spec: DomainSpec) -> Self {
        for a in 0..3 {
            assert!(
                spec.blocks[a] > 0 && spec.cells[a] % spec.blocks[a] == 0,
                "axis {a}: {} cells not divisible into {} equal blocks",
                spec.cells[a],
                spec.blocks[a]
            );
        }
        let bc = spec.block_cells();
        let nb = spec.blocks;
        let mut blocks = Vec::with_capacity(spec.num_blocks());
        for bz in 0..nb[2] {
            for by in 0..nb[1] {
                for bx in 0..nb[0] {
                    let coords = [bx, by, bz];
                    let id = Self::id_of(nb, coords);
                    let mut neighbors = [None; 6];
                    for f in Face::ALL {
                        neighbors[f as usize] =
                            Self::neighbor_coords(&spec, coords, f).map(|nc| Self::id_of(nb, nc));
                    }
                    blocks.push(BlockDesc {
                        id,
                        coords,
                        cells: bc,
                        origin: [bx * bc[0], by * bc[1], bz * bc[2]],
                        neighbors,
                    });
                }
            }
        }
        Self { spec, blocks }
    }

    fn id_of(nb: [usize; 3], c: [usize; 3]) -> usize {
        (c[2] * nb[1] + c[1]) * nb[0] + c[0]
    }

    fn neighbor_coords(spec: &DomainSpec, c: [usize; 3], f: Face) -> Option<[usize; 3]> {
        let off = f.offset();
        let mut n = c;
        let a = f.axis();
        let len = spec.blocks[a];
        let ni = c[a] as isize + off[a];
        if ni < 0 || ni >= len as isize {
            if spec.periodic[a] {
                n[a] = ((ni + len as isize) % len as isize) as usize;
            } else {
                return None;
            }
        } else {
            n[a] = ni as usize;
        }
        Some(n)
    }

    /// All block descriptors in id order.
    pub fn blocks(&self) -> &[BlockDesc] {
        &self.blocks
    }

    /// Descriptor of block `id`.
    pub fn block(&self, id: usize) -> &BlockDesc {
        &self.blocks[id]
    }

    /// Rank owning block `id` when distributing over `n_ranks` processes:
    /// contiguous, balanced slabs of consecutive ids (waLBerla's default
    /// static load balancing for uniform work).
    pub fn rank_of(&self, id: usize, n_ranks: usize) -> usize {
        let nb = self.blocks.len();
        assert!(n_ranks > 0 && n_ranks <= nb, "need 1..=#blocks ranks");
        // Inverse of the [start, end) mapping used in `blocks_of_rank`.
        (id * n_ranks + n_ranks - 1) / nb
    }

    /// Ids of the blocks owned by `rank`.
    pub fn blocks_of_rank(&self, rank: usize, n_ranks: usize) -> Vec<usize> {
        let nb = self.blocks.len();
        assert!(rank < n_ranks && n_ranks <= nb);
        let start = rank * nb / n_ranks;
        let end = (rank + 1) * nb / n_ranks;
        (start..end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_counts_and_origins() {
        let spec = DomainSpec::directional([8, 8, 12], [2, 2, 3]);
        let d = Decomposition::new(spec);
        assert_eq!(d.blocks().len(), 12);
        assert_eq!(spec.block_cells(), [4, 4, 4]);
        let b = d.block(0);
        assert_eq!(b.coords, [0, 0, 0]);
        assert_eq!(b.origin, [0, 0, 0]);
        let b = d.block(11);
        assert_eq!(b.coords, [1, 1, 2]);
        assert_eq!(b.origin, [4, 4, 8]);
    }

    #[test]
    fn neighbors_respect_periodicity() {
        let spec = DomainSpec::directional([8, 8, 8], [2, 2, 2]);
        let d = Decomposition::new(spec);
        let b = d.block(0); // coords (0,0,0)
                            // Periodic x: low neighbor wraps to coords (1,0,0) = id 1.
        assert_eq!(b.neighbors[Face::XLow as usize], Some(1));
        assert_eq!(b.neighbors[Face::XHigh as usize], Some(1));
        // Periodic y likewise.
        assert_eq!(b.neighbors[Face::YLow as usize], Some(2));
        // Open z: no neighbor below the bottom block.
        assert_eq!(b.neighbors[Face::ZLow as usize], None);
        assert_eq!(b.neighbors[Face::ZHigh as usize], Some(4));
        let top = d.block(4); // coords (0,0,1)
        assert_eq!(top.neighbors[Face::ZHigh as usize], None);
        assert_eq!(top.neighbors[Face::ZLow as usize], Some(0));
    }

    #[test]
    fn single_block_periodic_axis_is_its_own_neighbor() {
        let spec = DomainSpec {
            cells: [4, 4, 4],
            blocks: [1, 1, 1],
            periodic: [true, true, true],
        };
        let d = Decomposition::new(spec);
        let b = d.block(0);
        for f in Face::ALL {
            assert_eq!(b.neighbors[f as usize], Some(0));
        }
    }

    #[test]
    fn rank_assignment_is_balanced_partition() {
        let spec = DomainSpec::directional([4, 4, 32], [1, 1, 8]);
        let d = Decomposition::new(spec);
        for n_ranks in 1..=8 {
            let mut seen = [false; 8];
            let mut total = 0;
            for r in 0..n_ranks {
                let ids = d.blocks_of_rank(r, n_ranks);
                for &id in &ids {
                    assert!(!seen[id], "block {id} assigned twice");
                    seen[id] = true;
                    assert_eq!(d.rank_of(id, n_ranks), r, "rank_of inconsistent");
                }
                total += ids.len();
            }
            assert_eq!(total, 8, "all blocks assigned for {n_ranks} ranks");
            // Balance: sizes differ by at most 1.
            let sizes: Vec<usize> = (0..n_ranks)
                .map(|r| d.blocks_of_rank(r, n_ranks).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_blocks_rejected() {
        Decomposition::new(DomainSpec::directional([10, 8, 8], [3, 2, 2]));
    }
}
