//! Block-structured grid framework — the waLBerla substrate.
//!
//! The SC'15 paper implements its phase-field solver inside waLBerla, which
//! "partitions the simulation domain into equally sized chunks, called
//! blocks. On each block, a regular grid is allocated, extended by one or
//! more ghost layers for communication" (Sec. 3.1). This crate reproduces
//! that substrate:
//!
//! * [`GridDims`] — regular grid geometry with ghost layers and linearized
//!   indexing (x fastest, z slowest, matching the paper's loop nest where z
//!   is outermost so temperature-dependent terms amortize per slice);
//! * [`field::ScalarField`], [`field::SoaField`], [`field::AosField`] —
//!   ghost-layered fields in structure-of-arrays and array-of-structures
//!   layouts (the paper benchmarks both for the φ-field, Sec. 5.1.1);
//! * [`boundary`] — Dirichlet, Neumann and periodic boundary handling on
//!   physical domain faces (Fig. 2);
//! * [`ghost`] — face pack/unpack for ghost-layer exchange. Exchanging the
//!   six faces in x → y → z order with widening transverse extents fills
//!   edge and corner ghosts too, which the D3C19 stencil of the µ-sweep
//!   requires;
//! * [`decomp`] — static domain decomposition into equally sized blocks with
//!   face-neighbor topology and block-to-process assignment. As in waLBerla,
//!   "the data structure storing the blocks is fully distributed: every
//!   process holds information only about local and adjacent blocks".

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

pub mod balance;
pub mod boundary;
pub mod codec;
pub mod decomp;
pub mod field;
pub mod ghost;
pub mod rebalance;

use serde::{Deserialize, Serialize};

/// Geometry of one block's regular grid: interior extent plus ghost width.
///
/// Coordinates used throughout are *total* coordinates in `[0, n + 2g)`;
/// the interior occupies `[g, g + n)` per axis. Linearized with x fastest.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridDims {
    /// Interior cells in x.
    pub nx: usize,
    /// Interior cells in y.
    pub ny: usize,
    /// Interior cells in z.
    pub nz: usize,
    /// Ghost-layer width (1 suffices for the D3C7/D3C19 stencils here).
    pub ghost: usize,
}

impl GridDims {
    /// New grid geometry.
    pub fn new(nx: usize, ny: usize, nz: usize, ghost: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty grid");
        Self { nx, ny, nz, ghost }
    }

    /// Cubic block of edge `n` with ghost width 1 (the common case).
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n, 1)
    }

    /// Total extent in x including ghosts.
    #[inline(always)]
    pub fn tx(&self) -> usize {
        self.nx + 2 * self.ghost
    }

    /// Total extent in y including ghosts.
    #[inline(always)]
    pub fn ty(&self) -> usize {
        self.ny + 2 * self.ghost
    }

    /// Total extent in z including ghosts.
    #[inline(always)]
    pub fn tz(&self) -> usize {
        self.nz + 2 * self.ghost
    }

    /// Total number of cells including ghosts.
    #[inline(always)]
    pub fn volume(&self) -> usize {
        self.tx() * self.ty() * self.tz()
    }

    /// Number of interior cells.
    #[inline(always)]
    pub fn interior_volume(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Interior z extent in total (ghost-inclusive) coordinates:
    /// `[ghost, ghost + nz)`. Sweep kernels take sub-ranges of this for
    /// z-slab work-sharing.
    #[inline(always)]
    pub fn interior_z_range(&self) -> (usize, usize) {
        (self.ghost, self.ghost + self.nz)
    }

    /// Stride between consecutive y rows.
    #[inline(always)]
    pub fn sy(&self) -> usize {
        self.tx()
    }

    /// Stride between consecutive z slices.
    #[inline(always)]
    pub fn sz(&self) -> usize {
        self.tx() * self.ty()
    }

    /// Linear index of total coordinates (x, y, z).
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.tx() && y < self.ty() && z < self.tz());
        (z * self.ty() + y) * self.tx() + x
    }

    /// Linear index of *interior* coordinates (0-based inside the interior).
    #[inline(always)]
    pub fn interior_idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        self.idx(x + self.ghost, y + self.ghost, z + self.ghost)
    }

    /// Iterate over all interior total-coordinate triples, z-outermost.
    pub fn interior_iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let g = self.ghost;
        (g..g + self.nz).flat_map(move |z| {
            (g..g + self.ny).flat_map(move |y| (g..g + self.nx).map(move |x| (x, y, z)))
        })
    }

    /// Inverse of [`Self::idx`]: total coordinates of a linear index.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.tx();
        let y = (i / self.tx()) % self.ty();
        let z = i / (self.tx() * self.ty());
        (x, y, z)
    }
}

/// The six faces of a block, in the fixed exchange order x → y → z.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Face {
    /// −x face.
    XLow = 0,
    /// +x face.
    XHigh = 1,
    /// −y face.
    YLow = 2,
    /// +y face.
    YHigh = 3,
    /// −z face.
    ZLow = 4,
    /// +z face.
    ZHigh = 5,
}

impl Face {
    /// All faces in exchange order.
    pub const ALL: [Face; 6] = [
        Face::XLow,
        Face::XHigh,
        Face::YLow,
        Face::YHigh,
        Face::ZLow,
        Face::ZHigh,
    ];

    /// Axis of this face (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self) -> usize {
        (self as usize) / 2
    }

    /// True for the +side face of its axis.
    #[inline]
    pub fn is_high(self) -> bool {
        (self as usize) % 2 == 1
    }

    /// The opposite face.
    #[inline]
    pub fn opposite(self) -> Face {
        Face::ALL[(self as usize) ^ 1]
    }

    /// Unit offset of the neighboring block in block coordinates.
    #[inline]
    pub fn offset(self) -> [isize; 3] {
        let mut o = [0isize; 3];
        o[self.axis()] = if self.is_high() { 1 } else { -1 };
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_strides() {
        let d = GridDims::new(4, 5, 6, 1);
        assert_eq!(d.tx(), 6);
        assert_eq!(d.ty(), 7);
        assert_eq!(d.tz(), 8);
        assert_eq!(d.volume(), 6 * 7 * 8);
        assert_eq!(d.interior_volume(), 120);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), d.sy());
        assert_eq!(d.idx(0, 0, 1), d.sz());
    }

    #[test]
    fn idx_coords_roundtrip() {
        let d = GridDims::new(3, 4, 5, 2);
        for i in 0..d.volume() {
            let (x, y, z) = d.coords(i);
            assert_eq!(d.idx(x, y, z), i);
        }
    }

    #[test]
    fn interior_iter_covers_interior_exactly() {
        let d = GridDims::cube(3);
        let cells: Vec<_> = d.interior_iter().collect();
        assert_eq!(cells.len(), 27);
        assert!(cells.iter().all(|&(x, y, z)| {
            (1..4).contains(&x) && (1..4).contains(&y) && (1..4).contains(&z)
        }));
        // z must be outermost (paper's loop order for the T(z) optimization).
        assert_eq!(cells[0], (1, 1, 1));
        assert_eq!(cells[1], (2, 1, 1));
        assert_eq!(cells[3], (1, 2, 1));
        assert_eq!(cells[9], (1, 1, 2));
    }

    #[test]
    fn faces() {
        assert_eq!(Face::XLow.opposite(), Face::XHigh);
        assert_eq!(Face::ZHigh.opposite(), Face::ZLow);
        assert_eq!(Face::YLow.axis(), 1);
        assert!(!Face::YLow.is_high());
        assert_eq!(Face::XHigh.offset(), [1, 0, 0]);
        assert_eq!(Face::ZLow.offset(), [0, 0, -1]);
    }
}
