//! Ghost-layer pack/unpack for neighbor-block exchange.
//!
//! Faces are exchanged in the fixed order x → y → z. A face message covers
//! the *full* (ghost-inclusive) extent along axes that were already
//! exchanged and the interior extent along axes that have not been yet:
//! after the z exchange, every edge and corner ghost holds correct data,
//! which the D3C19 stencil of the µ-sweep requires — with only six messages
//! per block instead of 26.
//!
//! Packing copies the sender's interior boundary slab into a contiguous
//! buffer (the "packing and unpacking [of] messages which cannot be
//! overlapped" in the paper's Fig. 8 discussion); unpacking writes it into
//! the receiver's ghost slab on the opposite face.

use crate::field::SoaField;
use crate::{Face, GridDims};

/// An axis-aligned cell region given by half-open total-coordinate ranges.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// `[start, end)` per axis, in total coordinates.
    pub range: [[usize; 2]; 3],
}

impl Region {
    /// Number of cells in the region.
    pub fn volume(&self) -> usize {
        self.range.iter().map(|r| r[1] - r[0]).product()
    }
}

/// Extent along `axis` that a face message spans, per the x → y → z rule.
fn transverse_range(dims: GridDims, msg_axis: usize, axis: usize) -> [usize; 2] {
    let (n, t) = match axis {
        0 => (dims.nx, dims.tx()),
        1 => (dims.ny, dims.ty()),
        _ => (dims.nz, dims.tz()),
    };
    if axis < msg_axis {
        [0, t] // already exchanged: include ghosts
    } else {
        [dims.ghost, dims.ghost + n] // not yet exchanged: interior only
    }
}

/// The region a sender reads when packing its `face` message: the `ghost`
/// innermost interior layers adjacent to that face.
pub fn send_region(dims: GridDims, face: Face) -> Region {
    let a = face.axis();
    let g = dims.ghost;
    let n = match a {
        0 => dims.nx,
        1 => dims.ny,
        _ => dims.nz,
    };
    let mut range = [[0usize; 2]; 3];
    for axis in 0..3 {
        range[axis] = if axis == a {
            if face.is_high() {
                [n, n + g] // last g interior layers
            } else {
                [g, 2 * g] // first g interior layers
            }
        } else {
            transverse_range(dims, a, axis)
        };
    }
    Region { range }
}

/// The region a receiver writes when unpacking a message arriving at `face`:
/// the ghost layers outside that face.
pub fn recv_region(dims: GridDims, face: Face) -> Region {
    let a = face.axis();
    let g = dims.ghost;
    let n = match a {
        0 => dims.nx,
        1 => dims.ny,
        _ => dims.nz,
    };
    let mut range = [[0usize; 2]; 3];
    for axis in 0..3 {
        range[axis] = if axis == a {
            if face.is_high() {
                [n + g, n + 2 * g]
            } else {
                [0, g]
            }
        } else {
            transverse_range(dims, a, axis)
        };
    }
    Region { range }
}

/// Number of doubles in a face message for an `NC`-component field.
pub fn message_len(dims: GridDims, face: Face, nc: usize) -> usize {
    send_region(dims, face).volume() * nc
}

/// Wire size in bytes of a sequenced face message (f64 payload) — the
/// analytic ground truth the telemetry byte counters are checked against.
pub fn message_bytes(dims: GridDims, face: Face, nc: usize) -> u64 {
    (message_len(dims, face, nc) * std::mem::size_of::<f64>()) as u64
}

/// Wire size in bytes of a "plain" (face-ghost-only) message (f64 payload).
pub fn message_bytes_plain(dims: GridDims, face: Face, nc: usize) -> u64 {
    (send_region_plain(dims, face).volume() * nc * std::mem::size_of::<f64>()) as u64
}

/// Send region with interior-only transverse extent on *all* axes.
///
/// Unlike [`send_region`], these "plain" face messages are mutually
/// independent, so all six can be posted at once and overlapped with
/// computation. They fill face ghosts only (no edges/corners) — sufficient
/// for the µ-field, whose kernels never read edge ghosts, and this is what
/// makes hiding the µ-communication "straightforward" (Sec. 3.3) while the
/// φ-field (D3C19) needs the sequenced exchange.
pub fn send_region_plain(dims: GridDims, face: Face) -> Region {
    let mut r = send_region(dims, face);
    for axis in 0..3 {
        if axis != face.axis() {
            let (n, _) = match axis {
                0 => (dims.nx, dims.tx()),
                1 => (dims.ny, dims.ty()),
                _ => (dims.nz, dims.tz()),
            };
            r.range[axis] = [dims.ghost, dims.ghost + n];
        }
    }
    r
}

/// Receive region matching [`send_region_plain`].
pub fn recv_region_plain(dims: GridDims, face: Face) -> Region {
    let mut r = recv_region(dims, face);
    for axis in 0..3 {
        if axis != face.axis() {
            let n = match axis {
                0 => dims.nx,
                1 => dims.ny,
                _ => dims.nz,
            };
            r.range[axis] = [dims.ghost, dims.ghost + n];
        }
    }
    r
}

/// Pack an arbitrary region (component-major, then z, y, x).
pub fn pack_region<const NC: usize>(field: &SoaField<NC>, r: Region, buf: &mut Vec<f64>) {
    let dims = field.dims();
    buf.clear();
    buf.reserve(r.volume() * NC);
    for c in 0..NC {
        let comp = field.comp(c);
        for z in r.range[2][0]..r.range[2][1] {
            for y in r.range[1][0]..r.range[1][1] {
                let row = dims.idx(r.range[0][0], y, z);
                buf.extend_from_slice(&comp[row..row + (r.range[0][1] - r.range[0][0])]);
            }
        }
    }
}

/// Unpack into an arbitrary region (inverse of [`pack_region`]).
pub fn unpack_region<const NC: usize>(field: &mut SoaField<NC>, r: Region, data: &[f64]) {
    let dims = field.dims();
    assert_eq!(data.len(), r.volume() * NC, "ghost message length mismatch");
    let row_len = r.range[0][1] - r.range[0][0];
    let mut pos = 0;
    for c in 0..NC {
        let comp = field.comp_mut(c);
        for z in r.range[2][0]..r.range[2][1] {
            for y in r.range[1][0]..r.range[1][1] {
                let row = dims.idx(r.range[0][0], y, z);
                comp[row..row + row_len].copy_from_slice(&data[pos..pos + row_len]);
                pos += row_len;
            }
        }
    }
}

/// Pack the `face` message of `field` into `buf` (cleared first).
///
/// Layout: component-major, then z, y, x — matching [`unpack`].
pub fn pack<const NC: usize>(field: &SoaField<NC>, face: Face, buf: &mut Vec<f64>) {
    pack_region(field, send_region(field.dims(), face), buf);
}

/// Unpack a message received at `face` into the ghost layers of `field`.
///
/// `face` is the receiver's face the message arrived at (i.e. the sender is
/// the neighbor in that direction, and packed its opposite face).
///
/// # Panics
/// Panics if `data` has the wrong length.
pub fn unpack<const NC: usize>(field: &mut SoaField<NC>, face: Face, data: &[f64]) {
    unpack_region(field, recv_region(field.dims(), face), data);
}

/// Perform a local periodic exchange on one axis of a single field by
/// packing each face and unpacking it at the opposite face — exactly what a
/// pair of neighboring blocks does through the communicator, but in-place.
/// Used by tests and by single-block periodic domains.
pub fn local_periodic_exchange<const NC: usize>(field: &mut SoaField<NC>, axis: usize) {
    let faces = [Face::ALL[2 * axis], Face::ALL[2 * axis + 1]];
    let mut buf = Vec::new();
    for f in faces {
        pack(field, f, &mut buf);
        let data = core::mem::take(&mut buf);
        unpack(field, f.opposite(), &data);
        buf = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{Bc, BoundarySpec};

    fn marked(d: GridDims) -> SoaField<2> {
        let mut f = SoaField::<2>::new(d, [-1.0; 2]);
        for (x, y, z) in d.interior_iter() {
            f.set(0, x, y, z, (x * 10000 + y * 100 + z) as f64);
            f.set(1, x, y, z, (x * 10000 + y * 100 + z) as f64 + 0.5);
        }
        f
    }

    #[test]
    fn regions_have_expected_shapes() {
        let d = GridDims::new(4, 5, 6, 1);
        // x message: 1 layer thick, interior transverse.
        let r = send_region(d, Face::XHigh);
        assert_eq!(r.range, [[4, 5], [1, 6], [1, 7]]);
        assert_eq!(r.volume(), 30);
        // y message: full x, interior z.
        let r = send_region(d, Face::YLow);
        assert_eq!(r.range, [[0, 6], [1, 2], [1, 7]]);
        // z message: full x and y.
        let r = send_region(d, Face::ZHigh);
        assert_eq!(r.range, [[0, 6], [0, 7], [6, 7]]);
        assert_eq!(message_len(d, Face::ZHigh, 4), 6 * 7 * 4);
        // Receive regions are the mirrored ghost slabs.
        assert_eq!(recv_region(d, Face::XLow).range, [[0, 1], [1, 6], [1, 7]]);
        assert_eq!(recv_region(d, Face::ZHigh).range, [[0, 6], [0, 7], [7, 8]]);
    }

    #[test]
    fn pack_unpack_roundtrip_matches_local_periodic() {
        // A fully periodic single block exchanged via pack/unpack must agree
        // with the BoundarySpec periodic fill.
        let d = GridDims::new(4, 3, 5, 1);
        let mut via_msgs = marked(d);
        for axis in 0..3 {
            local_periodic_exchange(&mut via_msgs, axis);
        }
        let mut via_bc = marked(d);
        BoundarySpec::uniform(Bc::Periodic).apply(&mut via_bc);
        for c in 0..2 {
            assert_eq!(via_msgs.comp(c), via_bc.comp(c), "component {c}");
        }
    }

    #[test]
    fn corner_ghosts_are_filled_after_xyz_exchange() {
        let d = GridDims::cube(3);
        let mut f = marked(d);
        for axis in 0..3 {
            local_periodic_exchange(&mut f, axis);
        }
        // The (0,0,0) corner ghost must hold the wrapped interior value of
        // the opposite corner (3,3,3).
        assert_eq!(f.at(0, 0, 0, 0), f.at(0, 3, 3, 3));
        assert_eq!(f.at(1, 4, 4, 4), f.at(1, 1, 1, 1));
        // Edge ghosts likewise.
        assert_eq!(f.at(0, 0, 0, 2), f.at(0, 3, 3, 2));
        assert_ne!(f.at(0, 0, 0, 0), -1.0, "corner ghost never written");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unpack_rejects_wrong_length() {
        let d = GridDims::cube(3);
        let mut f = marked(d);
        unpack(&mut f, Face::XLow, &[0.0; 3]);
    }
}
