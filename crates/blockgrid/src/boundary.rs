//! Boundary handling: Dirichlet, Neumann (zero-gradient) and periodic ghost
//! fills, matching the simulation setting of Fig. 2 (periodic in x/y,
//! Dirichlet solid at the bottom, Neumann at the top).
//!
//! Boundary handling runs after ghost-layer communication each sweep
//! (Algorithm 1, lines 3 and 6). Faces adjacent to another block carry
//! [`Bc::Comm`] and are skipped here — their ghosts are filled by the
//! exchange. Faces are processed in the fixed x → y → z order over the full
//! transverse extent, so edge/corner ghosts required by the D3C19 stencil
//! are filled consistently with the communication scheme (see [`crate::ghost`]).

use crate::field::SoaField;
use crate::Face;

/// Boundary condition of one block face.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Bc<const NC: usize> {
    /// Interior face: ghosts come from neighbor-block communication.
    Comm,
    /// Periodic wrap within this block (single-block-per-axis domains only;
    /// multi-block periodic axes wrap through [`Bc::Comm`] topology instead).
    Periodic,
    /// Zero-gradient: ghost layers copy the nearest interior layer.
    Neumann,
    /// Fixed values written into the ghost layers.
    Dirichlet([f64; NC]),
}

/// Boundary conditions for all six faces of a block.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundarySpec<const NC: usize> {
    /// Per-face condition, indexed by [`Face`] discriminant.
    pub faces: [Bc<NC>; 6],
}

impl<const NC: usize> BoundarySpec<NC> {
    /// All faces use the same condition.
    pub fn uniform(bc: Bc<NC>) -> Self {
        Self { faces: [bc; 6] }
    }

    /// The paper's directional-solidification setup (Fig. 2): periodic side
    /// walls, Dirichlet at the bottom (`z_low`), Neumann at the top
    /// (`z_high`).
    pub fn directional(z_low: [f64; NC], _z_high_neumann: ()) -> Self {
        let mut faces = [Bc::Periodic; 6];
        faces[Face::ZLow as usize] = Bc::Dirichlet(z_low);
        faces[Face::ZHigh as usize] = Bc::Neumann;
        Self { faces }
    }

    /// Condition on one face.
    #[inline]
    pub fn face(&self, f: Face) -> Bc<NC> {
        self.faces[f as usize]
    }

    /// Replace the condition on one face.
    pub fn with_face(mut self, f: Face, bc: Bc<NC>) -> Self {
        self.faces[f as usize] = bc;
        self
    }

    /// Fill the ghost layers of `field` on every non-[`Bc::Comm`] face.
    pub fn apply(&self, field: &mut SoaField<NC>) {
        for f in Face::ALL {
            match self.face(f) {
                Bc::Comm => {}
                Bc::Periodic => apply_periodic(field, f),
                Bc::Neumann => apply_neumann(field, f),
                Bc::Dirichlet(v) => apply_dirichlet(field, f, v),
            }
        }
    }
}

fn apply_periodic<const NC: usize>(field: &mut SoaField<NC>, face: Face) {
    let d = field.dims();
    let g = d.ghost;
    let (n, t) = match face.axis() {
        0 => (d.nx, d.tx()),
        1 => (d.ny, d.ty()),
        _ => (d.nz, d.tz()),
    };
    // Ghost layer l (0..g) on the low side maps to interior layer n+l from
    // the high side and vice versa.
    for l in 0..g {
        let (dst, src) = if face.is_high() {
            (n + g + l, g + l) // high ghost <- low interior
        } else {
            (l, n + l) // low ghost <- high interior (offset by g: n+l = g+n-g+l)
        };
        copy_axis_layer(field, face.axis(), dst, src, t);
    }
}

fn apply_neumann<const NC: usize>(field: &mut SoaField<NC>, face: Face) {
    let d = field.dims();
    let g = d.ghost;
    let n = match face.axis() {
        0 => d.nx,
        1 => d.ny,
        _ => d.nz,
    };
    let t = match face.axis() {
        0 => d.tx(),
        1 => d.ty(),
        _ => d.tz(),
    };
    for l in 0..g {
        let (dst, src) = if face.is_high() {
            (n + g + l, n + g - 1) // copy last interior layer outward
        } else {
            (l, g)
        };
        copy_axis_layer(field, face.axis(), dst, src, t);
    }
}

fn apply_dirichlet<const NC: usize>(field: &mut SoaField<NC>, face: Face, v: [f64; NC]) {
    let d = field.dims();
    let g = d.ghost;
    let n = match face.axis() {
        0 => d.nx,
        1 => d.ny,
        _ => d.nz,
    };
    for l in 0..g {
        let layer = if face.is_high() { n + g + l } else { l };
        fill_axis_layer(field, face.axis(), layer, v);
    }
}

/// Copy one full transverse layer `src` -> `dst` along `axis`.
fn copy_axis_layer<const NC: usize>(
    field: &mut SoaField<NC>,
    axis: usize,
    dst: usize,
    src: usize,
    _t: usize,
) {
    let d = field.dims();
    let (tx, ty, tz) = (d.tx(), d.ty(), d.tz());
    for c in 0..NC {
        let comp = field.comp_mut(c);
        match axis {
            0 => {
                for z in 0..tz {
                    for y in 0..ty {
                        let row = (z * ty + y) * tx;
                        comp[row + dst] = comp[row + src];
                    }
                }
            }
            1 => {
                for z in 0..tz {
                    let base = z * ty * tx;
                    let (d0, s0) = (base + dst * tx, base + src * tx);
                    comp.copy_within(s0..s0 + tx, d0);
                }
            }
            _ => {
                let (d0, s0) = (dst * ty * tx, src * ty * tx);
                comp.copy_within(s0..s0 + ty * tx, d0);
            }
        }
    }
}

/// Fill one full transverse layer along `axis` with constant `v`.
fn fill_axis_layer<const NC: usize>(
    field: &mut SoaField<NC>,
    axis: usize,
    layer: usize,
    v: [f64; NC],
) {
    let d = field.dims();
    let (tx, ty, tz) = (d.tx(), d.ty(), d.tz());
    for c in 0..NC {
        let comp = field.comp_mut(c);
        match axis {
            0 => {
                for z in 0..tz {
                    for y in 0..ty {
                        comp[(z * ty + y) * tx + layer] = v[c];
                    }
                }
            }
            1 => {
                for z in 0..tz {
                    let start = (z * ty + layer) * tx;
                    comp[start..start + tx].fill(v[c]);
                }
            }
            _ => {
                let start = layer * ty * tx;
                comp[start..start + ty * tx].fill(v[c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridDims;

    fn marked_field(d: GridDims) -> SoaField<2> {
        let mut f = SoaField::<2>::new(d, [0.0; 2]);
        for (x, y, z) in d.interior_iter() {
            f.set(0, x, y, z, (100 * x + 10 * y + z) as f64);
            f.set(1, x, y, z, -((100 * x + 10 * y + z) as f64));
        }
        f
    }

    #[test]
    fn periodic_wraps_interior() {
        let d = GridDims::new(4, 3, 3, 1);
        let mut f = marked_field(d);
        BoundarySpec::uniform(Bc::Periodic).apply(&mut f);
        // Low x ghost = high x interior.
        assert_eq!(f.at(0, 0, 1, 1), f.at(0, 4, 1, 1));
        // High x ghost = low x interior.
        assert_eq!(f.at(0, 5, 2, 1), f.at(0, 1, 2, 1));
        // Same along y and z.
        assert_eq!(f.at(0, 1, 0, 1), f.at(0, 1, 3, 1));
        assert_eq!(f.at(0, 1, 1, 4), f.at(0, 1, 1, 1));
        // Corner ghost picks up fully wrapped value thanks to x->y->z order.
        assert_eq!(f.at(0, 0, 0, 0), f.at(0, 4, 3, 3));
    }

    #[test]
    fn neumann_copies_nearest_interior() {
        let d = GridDims::new(3, 3, 3, 1);
        let mut f = marked_field(d);
        BoundarySpec::uniform(Bc::Neumann).apply(&mut f);
        assert_eq!(f.at(0, 0, 2, 2), f.at(0, 1, 2, 2));
        assert_eq!(f.at(0, 4, 2, 2), f.at(0, 3, 2, 2));
        assert_eq!(f.at(1, 2, 0, 2), f.at(1, 2, 1, 2));
        assert_eq!(f.at(1, 2, 2, 4), f.at(1, 2, 2, 3));
    }

    #[test]
    fn dirichlet_sets_ghost_values() {
        let d = GridDims::new(3, 3, 3, 1);
        let mut f = marked_field(d);
        let spec =
            BoundarySpec::uniform(Bc::Comm).with_face(Face::ZLow, Bc::Dirichlet([7.0, -7.0]));
        spec.apply(&mut f);
        assert_eq!(f.at(0, 2, 2, 0), 7.0);
        assert_eq!(f.at(1, 2, 2, 0), -7.0);
        // Untouched Comm faces keep their initial ghosts.
        assert_eq!(f.at(0, 0, 2, 2), 0.0);
    }

    #[test]
    fn directional_setup_matches_fig2() {
        let d = GridDims::new(3, 3, 3, 1);
        let mut f = marked_field(d);
        let spec = BoundarySpec::directional([1.0, 2.0], ());
        spec.apply(&mut f);
        // Bottom Dirichlet.
        assert_eq!(f.at(0, 1, 1, 0), 1.0);
        assert_eq!(f.at(1, 1, 1, 0), 2.0);
        // Top Neumann.
        assert_eq!(f.at(0, 1, 1, 4), f.at(0, 1, 1, 3));
        // Sides periodic.
        assert_eq!(f.at(0, 0, 1, 1), f.at(0, 3, 1, 1));
    }

    #[test]
    fn ghost_width_two() {
        let d = GridDims::new(4, 4, 4, 2);
        let mut f = marked_field(d);
        BoundarySpec::uniform(Bc::Periodic).apply(&mut f);
        // Layer 0 maps to interior layer n+0 = 4, layer 1 -> 5.
        assert_eq!(f.at(0, 0, 3, 3), f.at(0, 4, 3, 3));
        assert_eq!(f.at(0, 1, 3, 3), f.at(0, 5, 3, 3));
        assert_eq!(f.at(0, 6, 3, 3), f.at(0, 2, 3, 3));
        assert_eq!(f.at(0, 7, 3, 3), f.at(0, 3, 3, 3));
    }
}
