//! Ghost-layered fields in SoA and AoS layouts.
//!
//! The paper stores the φ-field in a structure-of-arrays (SoA) layout because
//! the four-cell-vectorized µ-kernel must load phase values of 38 cells,
//! while the cellwise-vectorized φ-kernel would prefer array-of-structures
//! (AoS) "to be able to load a SIMD vector directly from contiguous memory"
//! (Sec. 5.1.1). Both layouts are provided so the layout ablation can be
//! benchmarked; the solver uses SoA like the paper.

use crate::GridDims;
use serde::{Deserialize, Serialize};

/// A single-component scalar field with ghost layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalarField {
    dims: GridDims,
    data: Vec<f64>,
}

impl ScalarField {
    /// Allocate, initialized to `init`.
    pub fn new(dims: GridDims, init: f64) -> Self {
        Self {
            dims,
            data: vec![init; dims.volume()],
        }
    }

    /// Grid geometry.
    #[inline(always)]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Raw data, linearized (x fastest).
    #[inline(always)]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at total coordinates.
    #[inline(always)]
    pub fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.dims.idx(x, y, z)]
    }

    /// Set value at total coordinates.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.dims.idx(x, y, z);
        self.data[i] = v;
    }
}

/// Multi-component field in structure-of-arrays layout: component `c` is one
/// contiguous block of `dims.volume()` doubles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoaField<const NC: usize> {
    dims: GridDims,
    data: Vec<f64>,
}

impl<const NC: usize> SoaField<NC> {
    /// Allocate with every component of every cell set to `init[c]`.
    pub fn new(dims: GridDims, init: [f64; NC]) -> Self {
        let vol = dims.volume();
        let mut data = vec![0.0; NC * vol];
        for (c, chunk) in data.chunks_exact_mut(vol).enumerate() {
            chunk.fill(init[c]);
        }
        Self { dims, data }
    }

    /// Grid geometry.
    #[inline(always)]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Number of components.
    #[inline(always)]
    pub fn components(&self) -> usize {
        NC
    }

    /// Immutable slice of component `c`.
    #[inline(always)]
    pub fn comp(&self, c: usize) -> &[f64] {
        let vol = self.dims.volume();
        &self.data[c * vol..(c + 1) * vol]
    }

    /// Mutable slice of component `c`.
    #[inline(always)]
    pub fn comp_mut(&mut self, c: usize) -> &mut [f64] {
        let vol = self.dims.volume();
        &mut self.data[c * vol..(c + 1) * vol]
    }

    /// All components as an array of immutable slices.
    #[inline(always)]
    pub fn comps(&self) -> [&[f64]; NC] {
        let vol = self.dims.volume();
        let mut rest: &[f64] = &self.data;
        let mut out = [&[] as &[f64]; NC];
        for o in out.iter_mut() {
            let (head, tail) = rest.split_at(vol);
            *o = head;
            rest = tail;
        }
        out
    }

    /// All components as an array of mutable slices.
    #[inline(always)]
    pub fn comps_mut(&mut self) -> [&mut [f64]; NC] {
        let vol = self.dims.volume();
        let mut iter = self.data.chunks_exact_mut(vol);
        core::array::from_fn(|_| iter.next().expect("component count"))
    }

    /// Value of component `c` at total coordinates.
    #[inline(always)]
    pub fn at(&self, c: usize, x: usize, y: usize, z: usize) -> f64 {
        self.comp(c)[self.dims.idx(x, y, z)]
    }

    /// All components at total coordinates.
    #[inline(always)]
    pub fn cell(&self, x: usize, y: usize, z: usize) -> [f64; NC] {
        let i = self.dims.idx(x, y, z);
        let vol = self.dims.volume();
        core::array::from_fn(|c| self.data[c * vol + i])
    }

    /// Set component `c` at total coordinates.
    #[inline(always)]
    pub fn set(&mut self, c: usize, x: usize, y: usize, z: usize, v: f64) {
        let i = self.dims.idx(x, y, z);
        self.comp_mut(c)[i] = v;
    }

    /// Set all components at total coordinates.
    #[inline(always)]
    pub fn set_cell(&mut self, x: usize, y: usize, z: usize, v: [f64; NC]) {
        let i = self.dims.idx(x, y, z);
        let vol = self.dims.volume();
        for c in 0..NC {
            self.data[c * vol + i] = v[c];
        }
    }

    /// Raw backing storage (all components concatenated).
    #[inline(always)]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw backing storage.
    #[inline(always)]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Swap contents with another field of identical geometry (the paper's
    /// src/dst pointer swap at the end of each time step).
    pub fn swap(&mut self, other: &mut Self) {
        assert_eq!(self.dims, other.dims);
        core::mem::swap(&mut self.data, &mut other.data);
    }

    /// Shift all interior data one cell towards −z and fill the topmost
    /// interior slice with `fill` (the moving-window advance; ghost layers
    /// are left stale and must be refreshed by communication + boundary
    /// handling afterwards).
    pub fn shift_z_down(&mut self, fill: [f64; NC]) {
        let d = self.dims;
        let g = d.ghost;
        let sz = d.sz();
        let vol = d.volume();
        for c in 0..NC {
            let comp = &mut self.data[c * vol..(c + 1) * vol];
            for z in g..g + d.nz - 1 {
                let (dst_start, src_start) = (z * sz, (z + 1) * sz);
                comp.copy_within(src_start..src_start + sz, dst_start);
            }
            let top = (g + d.nz - 1) * sz;
            // Fill only the interior cells of the top slice.
            for y in g..g + d.ny {
                let row = top + y * d.sy() + g;
                comp[row..row + d.nx].fill(fill[c]);
            }
        }
    }

    /// Convert to an AoS copy (for the layout ablation benchmark).
    pub fn to_aos(&self) -> AosField<NC> {
        let mut out = AosField::new(self.dims, [0.0; NC]);
        for i in 0..self.dims.volume() {
            for c in 0..NC {
                out.data[i * NC + c] = self.comp(c)[i];
            }
        }
        out
    }
}

/// Multi-component field in array-of-structures layout: the `NC` components
/// of one cell are adjacent in memory, so a whole cell loads as one vector.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AosField<const NC: usize> {
    dims: GridDims,
    data: Vec<f64>,
}

impl<const NC: usize> AosField<NC> {
    /// Allocate with every cell set to `init`.
    pub fn new(dims: GridDims, init: [f64; NC]) -> Self {
        let vol = dims.volume();
        let mut data = Vec::with_capacity(NC * vol);
        for _ in 0..vol {
            data.extend_from_slice(&init);
        }
        Self { dims, data }
    }

    /// Grid geometry.
    #[inline(always)]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// All components at total coordinates.
    #[inline(always)]
    pub fn cell(&self, x: usize, y: usize, z: usize) -> [f64; NC] {
        let i = self.dims.idx(x, y, z) * NC;
        core::array::from_fn(|c| self.data[i + c])
    }

    /// Set all components at total coordinates.
    #[inline(always)]
    pub fn set_cell(&mut self, x: usize, y: usize, z: usize, v: [f64; NC]) {
        let i = self.dims.idx(x, y, z) * NC;
        self.data[i..i + NC].copy_from_slice(&v);
    }

    /// Raw storage; cell `i`'s components live at `[i*NC, (i+1)*NC)`.
    #[inline(always)]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline(always)]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Convert to a SoA copy.
    pub fn to_soa(&self) -> SoaField<NC> {
        let mut out = SoaField::new(self.dims, [0.0; NC]);
        for i in 0..self.dims.volume() {
            for c in 0..NC {
                out.comp_mut(c)[i] = self.data[i * NC + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_component_slices_are_disjoint_and_ordered() {
        let d = GridDims::cube(2);
        let mut f = SoaField::<3>::new(d, [1.0, 2.0, 3.0]);
        assert!(f.comp(0).iter().all(|&v| v == 1.0));
        assert!(f.comp(2).iter().all(|&v| v == 3.0));
        f.set(1, 0, 0, 0, 9.0);
        assert_eq!(f.at(1, 0, 0, 0), 9.0);
        assert_eq!(f.at(0, 0, 0, 0), 1.0);
        let [a, b, c] = f.comps();
        assert_eq!(a.len(), d.volume());
        assert_eq!(b[0], 9.0);
        assert_eq!(c.len(), d.volume());
    }

    #[test]
    fn cell_get_set_roundtrip() {
        let d = GridDims::new(3, 2, 2, 1);
        let mut f = SoaField::<4>::new(d, [0.0; 4]);
        f.set_cell(2, 1, 1, [0.1, 0.2, 0.3, 0.4]);
        assert_eq!(f.cell(2, 1, 1), [0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn soa_aos_roundtrip() {
        let d = GridDims::new(3, 4, 2, 1);
        let mut f = SoaField::<2>::new(d, [0.0; 2]);
        for i in 0..d.volume() {
            f.comp_mut(0)[i] = i as f64;
            f.comp_mut(1)[i] = -(i as f64);
        }
        let aos = f.to_aos();
        let back = aos.to_soa();
        assert_eq!(f.comp(0), back.comp(0));
        assert_eq!(f.comp(1), back.comp(1));
        let (x, y, z) = (1, 2, 1);
        assert_eq!(f.cell(x, y, z), aos.cell(x, y, z));
    }

    #[test]
    fn swap_exchanges_contents() {
        let d = GridDims::cube(2);
        let mut a = SoaField::<1>::new(d, [1.0]);
        let mut b = SoaField::<1>::new(d, [2.0]);
        a.swap(&mut b);
        assert_eq!(a.at(0, 1, 1, 1), 2.0);
        assert_eq!(b.at(0, 1, 1, 1), 1.0);
    }

    #[test]
    fn shift_z_down_moves_slices_and_fills_top() {
        let d = GridDims::new(2, 2, 3, 1);
        let mut f = SoaField::<1>::new(d, [0.0]);
        // Mark each interior slice with its z index.
        for (x, y, z) in d.interior_iter() {
            f.set(0, x, y, z, z as f64);
        }
        f.shift_z_down([99.0]);
        let g = d.ghost;
        for y in g..g + d.ny {
            for x in g..g + d.nx {
                assert_eq!(f.at(0, x, y, g), (g + 1) as f64);
                assert_eq!(f.at(0, x, y, g + 1), (g + 2) as f64);
                assert_eq!(f.at(0, x, y, g + 2), 99.0);
            }
        }
    }
}
