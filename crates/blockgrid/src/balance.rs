//! Static load balancing of weighted blocks onto ranks.
//!
//! The paper (Sec. 5.1.2): "We experimented with various load balancing
//! techniques offered by the waLBerla framework, which did, however, not
//! decrease the total runtime significantly, because the moving window
//! technique makes it possible to simulate only the interface region, such
//! that, in production runs, most blocks have a composition similar to the
//! 'interface' benchmark." This module provides the techniques to reproduce
//! that experiment: per-block weights (from the region-dependent kernel
//! rates) distributed either contiguously (the default, locality-preserving)
//! or greedily (LPT, locality-agnostic but tighter).

/// Maximum rank weight divided by the average (1.0 = perfectly balanced).
pub fn imbalance(weights: &[f64], assignment: &[usize], n_ranks: usize) -> f64 {
    assert_eq!(weights.len(), assignment.len());
    let mut per_rank = vec![0.0; n_ranks];
    for (&w, &r) in weights.iter().zip(assignment) {
        per_rank[r] += w;
    }
    let total: f64 = per_rank.iter().sum();
    let avg = total / n_ranks as f64;
    if avg <= 0.0 {
        return 1.0;
    }
    per_rank.iter().fold(0.0f64, |m, &v| m.max(v)) / avg
}

/// Even contiguous partition by block *count* (waLBerla's default static
/// assignment for uniform work, matching
/// [`crate::decomp::Decomposition::blocks_of_rank`]).
pub fn assign_contiguous_uniform(n_blocks: usize, n_ranks: usize) -> Vec<usize> {
    (0..n_blocks)
        .map(|id| (id * n_ranks + n_ranks - 1) / n_blocks)
        .collect()
}

/// Optimal *contiguous* weighted partition: blocks stay in id order (good
/// halo locality), rank boundaries are chosen to minimize the maximum rank
/// weight. Binary search on the bottleneck + greedy feasibility check.
///
/// **Tie-break rule (determinism guarantee).** The greedy packing walks
/// blocks in ascending id and opens a new rank at the first block that
/// overflows the bottleneck cap (or that the trailing-rank reserve claims) —
/// there is no data-dependent ordering anywhere, so equal weights never
/// reshuffle between calls and the result is a pure function of
/// `(weights, n_ranks)`.
pub fn assign_contiguous_weighted(weights: &[f64], n_ranks: usize) -> Vec<usize> {
    assert!(n_ranks >= 1 && n_ranks <= weights.len());
    let max_w = weights.iter().fold(0.0f64, |m, &w| m.max(w));
    let total: f64 = weights.iter().sum();
    let (mut lo, mut hi) = (max_w, total);
    // Can all blocks be packed into n_ranks contiguous chunks of weight ≤ cap?
    let feasible = |cap: f64| -> bool {
        let mut chunks = 1;
        let mut acc = 0.0;
        for &w in weights {
            if acc + w > cap + 1e-12 {
                chunks += 1;
                acc = 0.0;
            }
            acc += w;
        }
        chunks <= n_ranks
    };
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Build the assignment with the found bottleneck, making sure trailing
    // ranks get at least one block each when possible.
    let cap = hi;
    let mut assignment = vec![0usize; weights.len()];
    let mut rank = 0;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        let blocks_left = weights.len() - i; // including this one
        let ranks_left = n_ranks - rank; // including the current rank
                                         // Start a new rank when the cap would overflow, or when every
                                         // remaining rank needs one of the remaining blocks.
        let overflow = acc > 0.0 && acc + w > cap + 1e-12;
        let reserve = acc > 0.0 && blocks_left == ranks_left;
        if (overflow || reserve) && rank + 1 < n_ranks {
            rank += 1;
            acc = 0.0;
        }
        assignment[i] = rank;
        acc += w;
    }
    assignment
}

/// Longest-processing-time greedy (non-contiguous): heaviest block first
/// onto the currently lightest rank. Tighter balance, but neighbors may
/// land on distant ranks (more halo traffic) — the locality/balance
/// trade-off the paper's experiment probes.
///
/// **Tie-break rule (determinism guarantee).** Blocks of equal weight are
/// processed in ascending block id (the sort is stable), and among equally
/// loaded ranks the *lowest* rank index wins (`min_by` returns the first
/// minimum). The assignment is therefore a pure function of
/// `(weights, n_ranks)`: repeated calls — and calls on different ranks —
/// produce the identical vector, which the dynamic rebalancer relies on to
/// broadcast only the decision, not the data.
pub fn assign_lpt(weights: &[f64], n_ranks: usize) -> Vec<usize> {
    assert!(n_ranks >= 1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    let mut rank_load = vec![0.0f64; n_ranks];
    let mut assignment = vec![0usize; weights.len()];
    for &i in &order {
        let r = rank_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assignment[i] = r;
        rank_load[r] += weights[i];
    }
    assignment
}

/// [`assign_lpt`] over an explicit set of target ranks instead of the
/// contiguous range `0..n_ranks` — the placement primitive for workloads
/// scheduled onto a *shrunken* universe (campaign job adoption after a
/// rank death) or onto any non-contiguous rank subset. `ranks` must be
/// non-empty; the returned vector holds actual rank ids from `ranks`.
///
/// Determinism matches [`assign_lpt`]: equal weights break ties by
/// ascending item index, equal loads by the earliest entry of `ranks`, so
/// every caller computing this from the same `(weights, ranks)` pair gets
/// the identical placement without communicating.
pub fn assign_lpt_over(weights: &[f64], ranks: &[usize]) -> Vec<usize> {
    assert!(!ranks.is_empty(), "need at least one target rank");
    assign_lpt(weights, ranks.len())
        .into_iter()
        .map(|slot| ranks[slot])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_over_maps_slots_to_given_ranks() {
        let w = vec![3.0, 1.0, 2.0, 1.0];
        let survivors = vec![0, 2, 3];
        let a = assign_lpt_over(&w, &survivors);
        assert_eq!(a.len(), w.len());
        for r in &a {
            assert!(survivors.contains(r), "assigned to dead rank: {a:?}");
        }
        // Pure function: identical on repeated evaluation.
        assert_eq!(a, assign_lpt_over(&w, &survivors));
        // Structure matches assign_lpt over the compacted rank space.
        let compact = assign_lpt(&w, survivors.len());
        for (i, &slot) in compact.iter().enumerate() {
            assert_eq!(a[i], survivors[slot]);
        }
    }

    #[test]
    fn uniform_weights_balance_perfectly() {
        let w = vec![1.0; 8];
        for n in [1, 2, 4, 8] {
            let a = assign_contiguous_weighted(&w, n);
            assert!(
                (imbalance(&w, &a, n) - 1.0).abs() < 1e-9,
                "{n} ranks: {a:?}"
            );
            let a = assign_lpt(&w, n);
            assert!((imbalance(&w, &a, n) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn contiguous_uniform_matches_decomposition_mapping() {
        use crate::decomp::{Decomposition, DomainSpec};
        let d = Decomposition::new(DomainSpec::directional([4, 4, 32], [1, 1, 8]));
        for n in 1..=8 {
            let a = assign_contiguous_uniform(8, n);
            for id in 0..8 {
                assert_eq!(a[id], d.rank_of(id, n));
            }
        }
    }

    #[test]
    fn weighted_contiguous_beats_uniform_on_skew() {
        // Production-like skew: interface blocks (slow) in the middle.
        let w = vec![1.0, 1.0, 3.0, 3.0, 3.0, 1.0, 1.0, 1.0];
        let uniform = assign_contiguous_uniform(8, 4);
        let weighted = assign_contiguous_weighted(&w, 4);
        let i_u = imbalance(&w, &uniform, 4);
        let i_w = imbalance(&w, &weighted, 4);
        assert!(i_w <= i_u + 1e-9, "weighted {i_w} vs uniform {i_u}");
        assert!(i_w < 1.5, "weighted partition still skewed: {i_w}"); // optimum here is 5/3.5
                                                                      // Contiguity: assignment is non-decreasing.
        assert!(weighted.windows(2).all(|p| p[0] <= p[1]));
        // Every rank serves at least one block.
        for r in 0..4 {
            assert!(weighted.contains(&r), "rank {r} idle: {weighted:?}");
        }
    }

    #[test]
    fn lpt_is_at_least_as_tight_as_contiguous() {
        let w = vec![5.0, 1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0];
        let c = assign_contiguous_weighted(&w, 4);
        let l = assign_lpt(&w, 4);
        assert!(imbalance(&w, &l, 4) <= imbalance(&w, &c, 4) + 1e-9);
    }

    #[test]
    fn interface_dominated_runs_gain_nothing() {
        // The paper's conclusion: with the moving window, all blocks look
        // like "interface" blocks, so weighting cannot help.
        let w = vec![2.9, 3.0, 3.1, 3.0, 2.95, 3.05, 3.0, 3.0];
        let uniform = assign_contiguous_uniform(8, 4);
        let weighted = assign_contiguous_weighted(&w, 4);
        let gain = imbalance(&w, &uniform, 4) - imbalance(&w, &weighted, 4);
        assert!(
            gain < 0.05,
            "unexpected gain {gain} on near-uniform weights"
        );
    }

    #[test]
    fn single_rank_assignment() {
        let w = vec![1.0, 2.0, 3.0];
        assert_eq!(assign_contiguous_weighted(&w, 1), vec![0, 0, 0]);
        assert_eq!(assign_lpt(&w, 1), vec![0, 0, 0]);
    }

    #[test]
    fn lpt_ties_follow_documented_rule_and_never_reshuffle() {
        // All weights equal: stable sort keeps ascending id order, and the
        // lowest equally-loaded rank wins — so the assignment is exactly
        // round-robin by id.
        let w = vec![2.5; 8];
        let a = assign_lpt(&w, 4);
        assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        for _ in 0..10 {
            assert_eq!(assign_lpt(&w, 4), a, "tie reshuffled between calls");
        }
        // Bit-identical duplicated weights (a two-block tie inside a skewed
        // population) also stay put across calls.
        let w = vec![1.0, 3.0, 3.0, 1.0, 2.0, 2.0];
        let a = assign_lpt(&w, 3);
        for _ in 0..10 {
            assert_eq!(assign_lpt(&w, 3), a);
        }
    }

    #[test]
    fn assignments_are_deterministic_across_calls() {
        let w: Vec<f64> = (0..16)
            .map(|i| 1.0 + (i as f64 * 0.7).sin().abs())
            .collect();
        for n in [1, 2, 3, 4, 8] {
            let c = assign_contiguous_weighted(&w, n);
            let l = assign_lpt(&w, n);
            for _ in 0..5 {
                assert_eq!(assign_contiguous_weighted(&w, n), c);
                assert_eq!(assign_lpt(&w, n), l);
            }
        }
    }
}
