//! Bit-exact wire codec for ghost-layered fields.
//!
//! In-flight block migration (dynamic load rebalancing) ships *complete*
//! field buffers — interiors **and** ghost layers — between ranks, and the
//! receiving rank must reconstruct the exact bit pattern the sender held:
//! the headline guarantee of the rebalancing subsystem is that a migrated
//! run is bit-identical to an unmigrated one. This codec therefore encodes
//! every `f64` by its raw bit pattern (NaN payloads and signed zeros
//! round-trip), prefixes a self-describing header, and appends a CRC32 so
//! a corrupted transfer is rejected instead of silently resumed.
//!
//! Both field layouts are supported ([`SoaField`] and [`AosField`], the
//! Sec. 5.1.1 layout ablation), and header dimensions are validated against
//! a byte budget *before* any allocation — the same anti-OOM gate the
//! checkpoint reader applies (`eutectica-pfio`, which reuses this module's
//! [`crc32`]).
//!
//! Wire layout (little-endian):
//!
//! ```text
//! magic "EUTFLD01" (8) | layout u8 | components u8 |
//! nx u64 | ny u64 | nz u64 | ghost u64 |
//! payload: components × volume × f64 (raw bits) | crc32 u32
//! ```

use crate::field::{AosField, SoaField};
use crate::GridDims;

/// Magic bytes of an encoded field.
pub const FIELD_MAGIC: [u8; 8] = *b"EUTFLD01";

/// Default cap on the allocation implied by a decoded field header (4 GiB);
/// the decoders reject larger headers *before* allocating.
pub const DEFAULT_FIELD_BYTE_BUDGET: u64 = 4 << 30;

/// Header bytes before the payload.
const HEADER_LEN: usize = 8 + 1 + 1 + 4 * 8;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial) — dependency-free, shared with
// the checkpoint formats in `eutectica-pfio`.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Memory layout of an encoded field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Structure of arrays: component-major, `volume` doubles per component.
    Soa = 0,
    /// Array of structures: cell-major, `NC` doubles per cell.
    Aos = 1,
}

/// Typed decode failure.
#[derive(Debug)]
pub enum CodecError {
    /// The bytes do not start with [`FIELD_MAGIC`].
    BadMagic,
    /// The input ended before the structure was complete.
    Truncated {
        /// What was being parsed.
        what: &'static str,
    },
    /// The encoded layout differs from the requested one.
    WrongLayout {
        /// Layout byte found in the header.
        found: u8,
    },
    /// The encoded component count differs from the requested `NC`.
    WrongComponents {
        /// Component count expected by the decoder.
        expected: usize,
        /// Component count found in the header.
        found: usize,
    },
    /// Header dimensions are zero, overflowing, or over the byte budget —
    /// refusing to allocate.
    InsaneDims {
        /// Human-readable description of the offending values.
        detail: String,
    },
    /// The CRC32 check failed — the bytes were corrupted in flight.
    CrcMismatch {
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC of the actual bytes.
        found: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad field magic"),
            CodecError::Truncated { what } => write!(f, "truncated while reading {what}"),
            CodecError::WrongLayout { found } => write!(f, "unexpected layout byte {found}"),
            CodecError::WrongComponents { expected, found } => {
                write!(f, "expected {expected} components, found {found}")
            }
            CodecError::InsaneDims { detail } => write!(f, "insane dimensions: {detail}"),
            CodecError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "crc mismatch: recorded {expected:#010x}, actual {found:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Validate header-supplied field dimensions against `budget` (bytes of
/// payload they imply) *before* any allocation. All arithmetic is checked.
pub fn validate_field_dims(
    nx: u64,
    ny: u64,
    nz: u64,
    ghost: u64,
    components: u64,
    budget: u64,
) -> Result<GridDims, CodecError> {
    let insane = |detail: String| Err(CodecError::InsaneDims { detail });
    if nx == 0 || ny == 0 || nz == 0 || components == 0 {
        return insane(format!("empty field {nx}×{ny}×{nz}×{components}"));
    }
    let total = |n: u64| ghost.checked_mul(2).and_then(|g2| n.checked_add(g2));
    let (Some(tx), Some(ty), Some(tz)) = (total(nx), total(ny), total(nz)) else {
        return insane(format!("ghost width {ghost} overflows extents"));
    };
    let bytes = tx
        .checked_mul(ty)
        .and_then(|v| v.checked_mul(tz))
        .and_then(|v| v.checked_mul(components))
        .and_then(|v| v.checked_mul(8));
    match bytes {
        Some(b) if b <= budget => {}
        _ => {
            return insane(format!(
                "{nx}×{ny}×{nz}×{components} (ghost {ghost}) implies > {budget} bytes"
            ))
        }
    }
    let fits = |v: u64| usize::try_from(v).is_ok();
    if !(fits(nx) && fits(ny) && fits(nz) && fits(ghost) && fits(tx * ty * tz)) {
        return insane("extents exceed usize".to_string());
    }
    Ok(GridDims::new(
        nx as usize,
        ny as usize,
        nz as usize,
        ghost as usize,
    ))
}

fn encode_raw(layout: Layout, components: usize, dims: GridDims, raw: &[f64]) -> Vec<u8> {
    debug_assert_eq!(raw.len(), components * dims.volume());
    let mut out = Vec::with_capacity(HEADER_LEN + raw.len() * 8 + 4);
    out.extend_from_slice(&FIELD_MAGIC);
    out.push(layout as u8);
    out.push(components as u8);
    for v in [dims.nx, dims.ny, dims.nz, dims.ghost] {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    for &v in raw {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_raw(
    bytes: &[u8],
    layout: Layout,
    components: usize,
    budget: u64,
) -> Result<(GridDims, Vec<f64>), CodecError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(CodecError::Truncated { what: "header" });
    }
    if bytes[..8] != FIELD_MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes[8] != layout as u8 {
        return Err(CodecError::WrongLayout { found: bytes[8] });
    }
    if bytes[9] as usize != components {
        return Err(CodecError::WrongComponents {
            expected: components,
            found: bytes[9] as usize,
        });
    }
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    let dims = validate_field_dims(
        u64_at(10),
        u64_at(18),
        u64_at(26),
        u64_at(34),
        components as u64,
        budget,
    )?;
    let n = components * dims.volume();
    let expected_len = HEADER_LEN + n * 8 + 4;
    if bytes.len() != expected_len {
        return Err(CodecError::Truncated { what: "payload" });
    }
    let body = &bytes[..expected_len - 4];
    let recorded = u32::from_le_bytes(bytes[expected_len - 4..].try_into().unwrap());
    let actual = crc32(body);
    if recorded != actual {
        return Err(CodecError::CrcMismatch {
            expected: recorded,
            found: actual,
        });
    }
    let mut data = Vec::with_capacity(n);
    for chunk in bytes[HEADER_LEN..expected_len - 4].chunks_exact(8) {
        data.push(f64::from_le_bytes(chunk.try_into().unwrap()));
    }
    Ok((dims, data))
}

/// Encode a SoA field — full buffer including ghost layers, bit-exact.
pub fn encode_soa<const NC: usize>(f: &SoaField<NC>) -> Vec<u8> {
    encode_raw(Layout::Soa, NC, f.dims(), f.raw())
}

/// Encode an AoS field — full buffer including ghost layers, bit-exact.
pub fn encode_aos<const NC: usize>(f: &AosField<NC>) -> Vec<u8> {
    encode_raw(Layout::Aos, NC, f.dims(), f.raw())
}

/// Decode a SoA field, validating dimensions against `budget` before
/// allocating and verifying the CRC trailer.
pub fn decode_soa<const NC: usize>(bytes: &[u8], budget: u64) -> Result<SoaField<NC>, CodecError> {
    let (dims, data) = decode_raw(bytes, Layout::Soa, NC, budget)?;
    let mut f = SoaField::new(dims, [0.0; NC]);
    f.raw_mut().copy_from_slice(&data);
    Ok(f)
}

/// Decode an AoS field, validating dimensions against `budget` before
/// allocating and verifying the CRC trailer.
pub fn decode_aos<const NC: usize>(bytes: &[u8], budget: u64) -> Result<AosField<NC>, CodecError> {
    let (dims, data) = decode_raw(bytes, Layout::Aos, NC, budget)?;
    let mut f = AosField::new(dims, [0.0; NC]);
    f.raw_mut().copy_from_slice(&data);
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn soa_roundtrip_preserves_bits_including_ghosts() {
        let d = GridDims::new(3, 4, 2, 1);
        let mut f = SoaField::<2>::new(d, [0.0; 2]);
        for (i, v) in f.raw_mut().iter_mut().enumerate() {
            *v = (i as f64).sin() * 1e-300 + i as f64;
        }
        // Specials must survive: NaN payload, -0.0, infinities.
        f.raw_mut()[0] = f64::from_bits(0x7ff8_dead_beef_0001);
        f.raw_mut()[1] = -0.0;
        f.raw_mut()[2] = f64::INFINITY;
        let bytes = encode_soa(&f);
        let back = decode_soa::<2>(&bytes, DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        assert_eq!(back.dims(), d);
        for (a, b) in f.raw().iter().zip(back.raw()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn aos_roundtrip_and_layout_mismatch() {
        let d = GridDims::new(2, 2, 2, 1);
        let mut f = AosField::<4>::new(d, [0.1, 0.2, 0.3, 0.4]);
        f.set_cell(1, 1, 1, [1.0, -2.0, 3.5, f64::MIN_POSITIVE]);
        let bytes = encode_aos(&f);
        let back = decode_aos::<4>(&bytes, DEFAULT_FIELD_BYTE_BUDGET).unwrap();
        assert_eq!(f.raw(), back.raw());
        assert!(matches!(
            decode_soa::<4>(&bytes, DEFAULT_FIELD_BYTE_BUDGET),
            Err(CodecError::WrongLayout { .. })
        ));
        assert!(matches!(
            decode_aos::<2>(&bytes, DEFAULT_FIELD_BYTE_BUDGET),
            Err(CodecError::WrongComponents { .. })
        ));
    }

    #[test]
    fn corruption_truncation_and_budget_are_rejected() {
        let d = GridDims::cube(3);
        let f = SoaField::<1>::new(d, [7.0]);
        let mut bytes = encode_soa(&f);
        assert!(decode_soa::<1>(&bytes[..bytes.len() - 5], u64::MAX).is_err());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_soa::<1>(&bytes, u64::MAX),
            Err(CodecError::CrcMismatch { .. })
        ));
        // A tiny budget rejects the header before allocation.
        let bytes = encode_soa(&f);
        assert!(matches!(
            decode_soa::<1>(&bytes, 16),
            Err(CodecError::InsaneDims { .. })
        ));
        assert!(validate_field_dims(u64::MAX, 1, 1, 1, 4, u64::MAX).is_err());
        assert!(validate_field_dims(0, 1, 1, 1, 1, u64::MAX).is_err());
    }
}
