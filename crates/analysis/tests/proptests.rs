//! Property-based tests for the analysis toolkit.

use eutectica_analysis::ccl::label_3d;
use eutectica_analysis::correlation::two_point_correlation;
use eutectica_analysis::fft::{fft, fft3, C};
use eutectica_analysis::pca::Pca;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT forward + inverse is the identity for arbitrary signals.
    #[test]
    fn fft_roundtrip(values in prop::collection::vec(-10.0..10.0f64, 64)) {
        let orig: Vec<C> = values.iter().map(|&v| (v, 0.0)).collect();
        let mut data = orig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    /// Parseval: the FFT preserves signal energy (with 1/n convention).
    #[test]
    fn fft_parseval(values in prop::collection::vec(-5.0..5.0f64, 32)) {
        let n = values.len() as f64;
        let mut data: Vec<C> = values.iter().map(|&v| (v, 0.0)).collect();
        let e_t: f64 = values.iter().map(|v| v * v).sum();
        fft(&mut data, false);
        let e_f: f64 = data.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n;
        prop_assert!((e_t - e_f).abs() < 1e-8 * e_t.max(1.0));
    }

    /// 3-D FFT round trip.
    #[test]
    fn fft3_roundtrip(values in prop::collection::vec(-3.0..3.0f64, 8 * 4 * 8)) {
        let dims = [8, 4, 8];
        let orig: Vec<C> = values.iter().map(|&v| (v, 0.0)).collect();
        let mut data = orig.clone();
        fft3(&mut data, dims, false);
        fft3(&mut data, dims, true);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.0 - b.0).abs() < 1e-9);
        }
    }

    /// S₂(0) equals the volume fraction, and |S₂(r)| ≤ S₂(0) everywhere.
    #[test]
    fn correlation_bounds(bits in prop::collection::vec(any::<bool>(), 8 * 8 * 8)) {
        let dims = [8, 8, 8];
        let mask: Vec<f64> = bits.iter().map(|&b| b as u8 as f64).collect();
        let frac = mask.iter().sum::<f64>() / mask.len() as f64;
        let corr = two_point_correlation(&mask, dims);
        prop_assert!((corr[0] - frac).abs() < 1e-9);
        for &v in &corr {
            prop_assert!(v <= corr[0] + 1e-9 && v >= -1e-9);
        }
    }

    /// Component labeling: labels partition the mask (every masked cell has
    /// a label, none outside), and sizes sum to the mask count.
    #[test]
    fn labels_partition_mask(bits in prop::collection::vec(any::<bool>(), 6 * 6 * 6)) {
        let dims = [6, 6, 6];
        let l = label_3d(&bits, dims, [false; 3]);
        let mut counted = 0usize;
        for (m, &lbl) in bits.iter().zip(&l.labels) {
            prop_assert_eq!(*m, lbl != 0);
            if lbl != 0 {
                counted += 1;
                prop_assert!((lbl as usize) <= l.count);
            }
        }
        prop_assert_eq!(counted, l.sizes[1..].iter().sum::<usize>());
    }

    /// Periodic labeling never yields more components than open labeling
    /// (wrapping can only merge).
    #[test]
    fn periodicity_only_merges(bits in prop::collection::vec(any::<bool>(), 5 * 5 * 5)) {
        let dims = [5, 5, 5];
        let open = label_3d(&bits, dims, [false; 3]);
        let per = label_3d(&bits, dims, [true; 3]);
        prop_assert!(per.count <= open.count);
    }

    /// PCA eigenvalues are non-negative and sorted; explained variance is
    /// monotone in k and reaches 1.
    #[test]
    fn pca_spectrum_properties(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..4).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        let pca = Pca::fit(&samples);
        for w in pca.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(pca.eigenvalues.iter().all(|&l| l >= -1e-9));
        let mut prev = 0.0;
        for k in 1..=4 {
            let e = pca.explained_variance(k);
            prop_assert!(e >= prev - 1e-12);
            prev = e;
        }
        prop_assert!((pca.explained_variance(4) - 1.0).abs() < 1e-9);
    }
}
