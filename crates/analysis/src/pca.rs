//! Principal component analysis (covariance + Jacobi eigensolver).
//!
//! Used on two-point-correlation feature vectors to compare microstructures
//! quantitatively — the analysis the paper announces as "a quantitative
//! comparison using Principal Component Analysis on two-point correlation"
//! (Sec. 5.2).

/// Result of a PCA.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Mean of the input samples (length = feature dimension).
    pub mean: Vec<f64>,
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Row-major principal axes (row i = component i, unit length).
    pub components: Vec<Vec<f64>>,
}

impl Pca {
    /// Fit a PCA to `samples` (each of equal length).
    ///
    /// # Panics
    /// Panics on empty input or inconsistent dimensions.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        let n = samples.len();
        assert!(n > 0, "no samples");
        let d = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == d), "ragged samples");
        let mut mean = vec![0.0; d];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        // Covariance matrix (d × d).
        let mut cov = vec![vec![0.0; d]; d];
        for s in samples {
            for i in 0..d {
                let di = s[i] - mean[i];
                for j in i..d {
                    cov[i][j] += di * (s[j] - mean[j]);
                }
            }
        }
        let norm = 1.0 / (n.max(2) - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[i][j] *= norm;
                cov[j][i] = cov[i][j];
            }
        }
        let (eigenvalues, components) = jacobi_eigen(cov);
        Self {
            mean,
            eigenvalues,
            components,
        }
    }

    /// Project a sample onto the first `k` principal components.
    pub fn project(&self, sample: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(sample.len(), self.mean.len());
        (0..k.min(self.components.len()))
            .map(|c| {
                self.components[c]
                    .iter()
                    .zip(sample.iter().zip(&self.mean))
                    .map(|(w, (v, m))| w * (v - m))
                    .sum()
            })
            .collect()
    }

    /// Fraction of total variance captured by the first `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }
}

/// Cyclic Jacobi eigen decomposition of a symmetric matrix. Returns
/// eigenvalues (descending) and matching unit eigenvectors (rows).
fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let d = a.len();
    let mut v = vec![vec![0.0; d]; d];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..d {
            for j in i + 1..d {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..d {
            for q in p + 1..d {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let (akp, akq) = (a[k][p], a[k][q]);
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let (apk, aqk) = (a[p][k], a[q][k]);
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..d)
        .map(|i| (a[i][i], (0..d).map(|k| v[k][i]).collect()))
        .collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
    (
        pairs.iter().map(|p| p.0).collect(),
        pairs.into_iter().map(|p| p.1).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Samples along the (1, 2)/√5 direction with small noise.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let samples: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                let t: f64 = rng.random_range(-1.0..1.0);
                let n: f64 = rng.random_range(-0.01..0.01);
                vec![t * 1.0 - n * 2.0, t * 2.0 + n * 1.0]
            })
            .collect();
        let pca = Pca::fit(&samples);
        assert!(pca.eigenvalues[0] > 50.0 * pca.eigenvalues[1]);
        let dir = &pca.components[0];
        let expect = [1.0 / 5.0f64.sqrt(), 2.0 / 5.0f64.sqrt()];
        let dot = (dir[0] * expect[0] + dir[1] * expect[1]).abs();
        assert!(dot > 0.999, "direction {dir:?}");
        assert!(pca.explained_variance(1) > 0.99);
    }

    #[test]
    fn projection_separates_clusters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut samples = Vec::new();
        for c in 0..2 {
            for _ in 0..50 {
                let base = if c == 0 { 0.0 } else { 10.0 };
                samples.push(vec![
                    base + rng.random_range(-0.5..0.5),
                    base + rng.random_range(-0.5..0.5),
                    rng.random_range(-0.5..0.5),
                ]);
            }
        }
        let pca = Pca::fit(&samples);
        let p0 = pca.project(&samples[0], 1)[0];
        let p1 = pca.project(&samples[99], 1)[0];
        assert!(
            (p0 - p1).abs() > 5.0,
            "clusters not separated: {p0} vs {p1}"
        );
    }

    #[test]
    fn eigenvalues_match_known_covariance() {
        // Deterministic 3-point set with known covariance eigenvalues.
        let samples = vec![vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 0.0]];
        let pca = Pca::fit(&samples);
        assert!((pca.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!(pca.eigenvalues[1].abs() < 1e-12);
    }
}
