//! Lamella tracking over time: splits and merges.
//!
//! "The evolution of the microstructure, especially the splitting of
//! lamellae and merging, is visible, and allows us to study the stability of
//! different phase arrangements" (Sec. 5.2, Fig. 11). Components of one
//! solid phase are labeled in consecutive snapshots and matched by cell
//! overlap; a component that overlaps two successors has split, two
//! components sharing one successor have merged.

use crate::ccl::{label_3d, Labels};
use eutectica_core::state::BlockState;
use std::collections::HashMap;

/// Labeled snapshot of one phase.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Component labels (interior cells, x fastest).
    pub labels: Labels,
    /// Interior dims.
    pub dims: [usize; 3],
}

impl Snapshot {
    /// Label the `phase` component field of a block (threshold φ > 0.5,
    /// periodic in x/y as in the directional setup).
    pub fn of_block(state: &BlockState, phase: usize) -> Self {
        let d = state.dims;
        let g = d.ghost;
        let dims = [d.nx, d.ny, d.nz];
        let mask: Vec<bool> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| {
                let x = i % dims[0];
                let y = (i / dims[0]) % dims[1];
                let z = i / (dims[0] * dims[1]);
                state.phi_src.at(phase, x + g, y + g, z + g) > 0.5
            })
            .collect();
        Self {
            labels: label_3d(&mask, dims, [true, true, false]),
            dims,
        }
    }

    /// Number of lamellae (connected components).
    pub fn lamella_count(&self) -> usize {
        self.labels.count
    }
}

/// Topological events between two snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Events {
    /// Components of `prev` that overlap ≥ 2 components of `next`.
    pub splits: usize,
    /// Components of `next` that overlap ≥ 2 components of `prev`.
    pub merges: usize,
    /// One-to-one continued components.
    pub continued: usize,
    /// Components of `next` with no predecessor (nucleated).
    pub born: usize,
    /// Components of `prev` with no successor (vanished).
    pub died: usize,
}

/// Match components by overlap and count events.
///
/// # Panics
/// Panics if the snapshots have different dims.
pub fn track(prev: &Snapshot, next: &Snapshot) -> Events {
    assert_eq!(prev.dims, next.dims, "snapshot dims differ");
    // overlap[(p, n)] = shared cell count.
    let mut overlap: HashMap<(u32, u32), usize> = HashMap::new();
    for (lp, ln) in prev.labels.labels.iter().zip(&next.labels.labels) {
        if *lp != 0 && *ln != 0 {
            *overlap.entry((*lp, *ln)).or_insert(0) += 1;
        }
    }
    let mut succ: HashMap<u32, usize> = HashMap::new();
    let mut pred: HashMap<u32, usize> = HashMap::new();
    for &(p, n) in overlap.keys() {
        *succ.entry(p).or_insert(0) += 1;
        *pred.entry(n).or_insert(0) += 1;
    }
    let mut e = Events::default();
    for p in 1..=prev.labels.count as u32 {
        match succ.get(&p).copied().unwrap_or(0) {
            0 => e.died += 1,
            1 => {}
            _ => e.splits += 1,
        }
    }
    for n in 1..=next.labels.count as u32 {
        match pred.get(&n).copied().unwrap_or(0) {
            0 => e.born += 1,
            1 => e.continued += 1,
            _ => e.merges += 1,
        }
    }
    // `continued` double-counts successors of splits; keep it as "next
    // components with exactly one parent", which is the natural census.
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_from_mask(mask: Vec<bool>, dims: [usize; 3]) -> Snapshot {
        Snapshot {
            labels: label_3d(&mask, dims, [false; 3]),
            dims,
        }
    }

    #[test]
    fn split_detected() {
        let dims = [12, 4, 1];
        // One bar splits into two.
        let mut before = vec![false; 48];
        let mut after = vec![false; 48];
        for x in 1..11 {
            before[x] = true;
        }
        for x in 1..5 {
            after[x] = true;
        }
        for x in 7..11 {
            after[x] = true;
        }
        let e = track(&snap_from_mask(before, dims), &snap_from_mask(after, dims));
        assert_eq!(e.splits, 1);
        assert_eq!(e.merges, 0);
        assert_eq!(e.continued, 2);
    }

    #[test]
    fn merge_detected() {
        let dims = [12, 4, 1];
        let mut before = vec![false; 48];
        let mut after = vec![false; 48];
        for x in 1..5 {
            before[x] = true;
        }
        for x in 7..11 {
            before[x] = true;
        }
        for x in 1..11 {
            after[x] = true;
        }
        let e = track(&snap_from_mask(before, dims), &snap_from_mask(after, dims));
        assert_eq!(e.merges, 1);
        assert_eq!(e.splits, 0);
    }

    #[test]
    fn birth_and_death() {
        let dims = [8, 2, 1];
        let mut before = vec![false; 16];
        let mut after = vec![false; 16];
        before[1] = true;
        before[2] = true; // dies
        after[12] = true;
        after[13] = true; // born elsewhere
        let e = track(&snap_from_mask(before, dims), &snap_from_mask(after, dims));
        assert_eq!(e.died, 1);
        assert_eq!(e.born, 1);
    }

    #[test]
    fn stable_structure_continues() {
        let dims = [8, 8, 2];
        let mask: Vec<bool> = (0..128).map(|i| i % 8 < 3).collect();
        let a = snap_from_mask(mask.clone(), dims);
        let b = snap_from_mask(mask, dims);
        let e = track(&a, &b);
        assert_eq!(e.splits + e.merges + e.born + e.died, 0);
        assert_eq!(e.continued, a.lamella_count());
    }

    #[test]
    fn snapshot_counts_lamellae_of_scenario() {
        use eutectica_blockgrid::GridDims;
        use eutectica_core::regions::{build_scenario, Scenario};
        let s = build_scenario(Scenario::Solid, GridDims::cube(24));
        let total: usize = (0..3)
            .map(|p| Snapshot::of_block(&s, p).lamella_count())
            .sum();
        assert!(total >= 3, "expected lamellae, found {total}");
    }
}
