//! Connected-component labeling on regular grids (union-find).

/// A labeled grid: `labels[i] == 0` means background; components are
/// numbered from 1.
#[derive(Clone, Debug)]
pub struct Labels {
    /// Per-cell label (0 = background).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Cells per component (index 0 unused).
    pub sizes: Vec<usize>,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        Self { parent: vec![0] } // slot 0 = background sentinel
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let p = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = p;
            x = p;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }
}

/// Label the 6-connected components of `mask` on an `nx × ny × nz` grid
/// (x fastest). `periodic` enables wrap-around connectivity per axis.
pub fn label_3d(mask: &[bool], dims: [usize; 3], periodic: [bool; 3]) -> Labels {
    let [nx, ny, nz] = dims;
    assert_eq!(mask.len(), nx * ny * nz);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut labels = vec![0u32; mask.len()];
    let mut uf = UnionFind::new();

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                if !mask[i] {
                    continue;
                }
                let mut lbl = 0u32;
                let consider = |j: usize, uf: &mut UnionFind, labels: &[u32], lbl: &mut u32| {
                    let l = labels[j];
                    if l != 0 {
                        if *lbl == 0 {
                            *lbl = l;
                        } else {
                            uf.union(*lbl, l);
                        }
                    }
                };
                if x > 0 {
                    consider(idx(x - 1, y, z), &mut uf, &labels, &mut lbl);
                }
                if y > 0 {
                    consider(idx(x, y - 1, z), &mut uf, &labels, &mut lbl);
                }
                if z > 0 {
                    consider(idx(x, y, z - 1), &mut uf, &labels, &mut lbl);
                }
                if lbl == 0 {
                    lbl = uf.make();
                }
                labels[i] = lbl;
            }
        }
    }

    // Periodic stitching: union across wrapped faces.
    for (axis, &p) in periodic.iter().enumerate() {
        if !p {
            continue;
        }
        let (u_max, v_max) = match axis {
            0 => (ny, nz),
            1 => (nx, nz),
            _ => (nx, ny),
        };
        for v in 0..v_max {
            for u in 0..u_max {
                let (i0, i1) = match axis {
                    0 => (idx(0, u, v), idx(nx - 1, u, v)),
                    1 => (idx(u, 0, v), idx(u, ny - 1, v)),
                    _ => (idx(u, v, 0), idx(u, v, nz - 1)),
                };
                if labels[i0] != 0 && labels[i1] != 0 {
                    uf.union(labels[i0], labels[i1]);
                }
            }
        }
    }

    // Flatten to dense component ids.
    let mut dense = vec![0u32; uf.parent.len()];
    let mut count = 0usize;
    let mut sizes = vec![0usize];
    for l in labels.iter_mut() {
        if *l == 0 {
            continue;
        }
        let root = uf.find(*l);
        if dense[root as usize] == 0 {
            count += 1;
            dense[root as usize] = count as u32;
            sizes.push(0);
        }
        *l = dense[root as usize];
        sizes[*l as usize] += 1;
    }
    Labels {
        labels,
        count,
        sizes,
    }
}

/// Label 4-connected components of a 2-D mask (`nx × ny`, x fastest).
pub fn label_2d(mask: &[bool], dims: [usize; 2], periodic: [bool; 2]) -> Labels {
    label_3d(
        mask,
        [dims[0], dims[1], 1],
        [periodic[0], periodic[1], false],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_separate_blobs() {
        let (nx, ny, nz) = (8, 4, 4);
        let mut mask = vec![false; nx * ny * nz];
        let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        for z in 0..2 {
            for y in 0..2 {
                mask[idx(0, y, z)] = true;
                mask[idx(1, y, z)] = true;
                mask[idx(6, y, z)] = true;
                mask[idx(7, y, z)] = true;
            }
        }
        let l = label_3d(&mask, [nx, ny, nz], [false; 3]);
        assert_eq!(l.count, 2);
        assert_eq!(l.sizes[1], 8);
        assert_eq!(l.sizes[2], 8);
        // Periodic x merges them.
        let l = label_3d(&mask, [nx, ny, nz], [true, false, false]);
        assert_eq!(l.count, 1);
        assert_eq!(l.sizes[1], 16);
    }

    #[test]
    fn diagonal_is_not_connected() {
        // 6-connectivity: corner-touching cells are separate components.
        let mut mask = vec![false; 8];
        mask[0] = true; // (0,0,0)
        mask[7] = true; // (1,1,1)
        let l = label_3d(&mask, [2, 2, 2], [false; 3]);
        assert_eq!(l.count, 2);
    }

    #[test]
    fn full_grid_is_one_component() {
        let l = label_3d(&[true; 27], [3, 3, 3], [false; 3]);
        assert_eq!(l.count, 1);
        assert_eq!(l.sizes[1], 27);
    }

    #[test]
    fn label_2d_ring_has_one_component() {
        let n = 8;
        let mut mask = vec![false; n * n];
        for y in 0..n {
            for x in 0..n {
                let on_ring = (x == 2 || x == 5) && (2..=5).contains(&y)
                    || (y == 2 || y == 5) && (2..=5).contains(&x);
                mask[y * n + x] = on_ring;
            }
        }
        let l = label_2d(&mask, [n, n], [false, false]);
        assert_eq!(l.count, 1);
    }

    #[test]
    fn snake_through_periodic_boundaries() {
        // A line wrapping around both axes stays one component.
        let n = 6;
        let mut mask = vec![false; n * n];
        for x in 0..n {
            mask[3 * n + x] = true; // row y=3
        }
        mask[3 * n] = true;
        let l = label_2d(&mask, [n, n], [true, true]);
        assert_eq!(l.count, 1);
    }
}
