//! Minimal self-contained FFT (iterative radix-2, complex, power-of-two
//! lengths) plus row-column 2-D/3-D transforms. Used by the two-point
//! correlation; no external FFT dependency is allowed in this workspace.

use std::f64::consts::PI;

/// Complex number as (re, im).
pub type C = (f64, f64);

#[inline]
fn c_mul(a: C, b: C) -> C {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place iterative radix-2 FFT. `inverse` applies the conjugate transform
/// *and* the 1/n scaling.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [C], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = c_mul(data[start + k + len / 2], w);
                data[start + k] = (u.0 + v.0, u.1 + v.1);
                data[start + k + len / 2] = (u.0 - v.0, u.1 - v.1);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.0 *= inv_n;
            d.1 *= inv_n;
        }
    }
}

/// In-place 3-D FFT on an `nx × ny × nz` complex grid (x fastest).
pub fn fft3(data: &mut [C], dims: [usize; 3], inverse: bool) {
    let [nx, ny, nz] = dims;
    assert_eq!(data.len(), nx * ny * nz);
    let mut scratch = vec![(0.0, 0.0); nx.max(ny).max(nz)];
    // x lines.
    for z in 0..nz {
        for y in 0..ny {
            let row = (z * ny + y) * nx;
            fft(&mut data[row..row + nx], inverse);
        }
    }
    // y lines.
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                scratch[y] = data[(z * ny + y) * nx + x];
            }
            fft(&mut scratch[..ny], inverse);
            for y in 0..ny {
                data[(z * ny + y) * nx + x] = scratch[y];
            }
        }
    }
    // z lines.
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                scratch[z] = data[(z * ny + y) * nx + x];
            }
            fft(&mut scratch[..nz], inverse);
            for z in 0..nz {
                data[(z * ny + y) * nx + x] = scratch[z];
            }
        }
    }
}

/// In-place 2-D FFT on an `nx × ny` complex grid (x fastest).
pub fn fft2(data: &mut [C], dims: [usize; 2], inverse: bool) {
    fft3(data, [dims[0], dims[1], 1], inverse);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 64;
        let orig: Vec<C> = (0..n)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = orig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_frequency_has_single_peak() {
        let n = 32;
        let k = 5;
        let mut data: Vec<C> = (0..n)
            .map(|i| ((2.0 * PI * k as f64 * i as f64 / n as f64).cos(), 0.0))
            .collect();
        fft(&mut data, false);
        for (f, v) in data.iter().enumerate() {
            let mag = (v.0 * v.0 + v.1 * v.1).sqrt();
            if f == k || f == n - k {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {f}: {mag}");
            } else {
                assert!(mag < 1e-9, "leakage at bin {f}: {mag}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let data_t: Vec<C> = (0..n).map(|i| ((i as f64).sin(), 0.0)).collect();
        let mut data_f = data_t.clone();
        fft(&mut data_f, false);
        let e_t: f64 = data_t.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let e_f: f64 = data_f.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n as f64;
        assert!((e_t - e_f).abs() < 1e-9);
    }

    #[test]
    fn fft3_roundtrip() {
        let dims = [8, 4, 16];
        let n = dims.iter().product::<usize>();
        let orig: Vec<C> = (0..n).map(|i| ((i as f64 * 0.7).sin(), 0.0)).collect();
        let mut data = orig.clone();
        fft3(&mut data, dims, false);
        fft3(&mut data, dims, true);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.0 - b.0).abs() < 1e-11);
        }
    }

    #[test]
    fn fft2_roundtrip() {
        let dims = [8, 16];
        let orig: Vec<C> = (0..128).map(|i| ((i as f64 * 0.3).cos(), 0.0)).collect();
        let mut data = orig.clone();
        fft2(&mut data, dims, false);
        fft2(&mut data, dims, true);
        for (a, b) in orig.iter().zip(&data) {
            assert!((a.0 - b.0).abs() < 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![(0.0, 0.0); 12];
        fft(&mut d, false);
    }
}
