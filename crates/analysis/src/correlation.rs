//! Two-point correlation of phase indicator fields.
//!
//! The two-point (auto)correlation S₂(r) of a phase indicator is the
//! probability that two points separated by r both lie in the phase — the
//! standard microstructure statistic the paper's announced "quantitative
//! comparison using Principal Component Analysis on two-point correlation"
//! builds on. Computed with the Wiener–Khinchin theorem: S₂ = F⁻¹|F(m)|²/N
//! under periodic boundary conditions.

use crate::fft::{fft3, C};

/// Periodic two-point autocorrelation map of an indicator field
/// (`nx × ny × nz`, x fastest; power-of-two dims). `out[r] =
/// ⟨m(x) m(x+r)⟩_x`, so `out[0] = volume fraction`.
pub fn two_point_correlation(mask: &[f64], dims: [usize; 3]) -> Vec<f64> {
    let n: usize = dims.iter().product();
    assert_eq!(mask.len(), n);
    let mut data: Vec<C> = mask.iter().map(|&v| (v, 0.0)).collect();
    fft3(&mut data, dims, false);
    for d in data.iter_mut() {
        let mag2 = d.0 * d.0 + d.1 * d.1;
        *d = (mag2, 0.0);
    }
    fft3(&mut data, dims, true);
    data.iter().map(|c| c.0 / n as f64).collect()
}

/// Radially averaged correlation: `out[k]` is the mean of the correlation
/// map over all lattice offsets with `round(|r|) == k` (periodic minimal
/// image). Length = `max_radius + 1`.
pub fn radial_average(corr: &[f64], dims: [usize; 3], max_radius: usize) -> Vec<f64> {
    let [nx, ny, nz] = dims;
    let mut sums = vec![0.0; max_radius + 1];
    let mut counts = vec![0usize; max_radius + 1];
    for z in 0..nz {
        let dz = z.min(nz - z) as f64;
        for y in 0..ny {
            let dy = y.min(ny - y) as f64;
            for x in 0..nx {
                let dx = x.min(nx - x) as f64;
                let r = (dx * dx + dy * dy + dz * dz).sqrt().round() as usize;
                if r <= max_radius {
                    sums[r] += corr[(z * ny + y) * nx + x];
                    counts[r] += 1;
                }
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Characteristic length: first radius where the normalized fluctuation
/// correlation `(S₂(r) − f²)/(f − f²)` drops below `threshold` (the lamella
/// spacing estimator for periodic lamellar structures).
pub fn correlation_length(radial: &[f64], threshold: f64) -> Option<usize> {
    let f = radial[0];
    let denom = f - f * f;
    if denom <= 0.0 {
        return None;
    }
    for (r, &v) in radial.iter().enumerate().skip(1) {
        if (v - f * f) / denom < threshold {
            return Some(r);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_offset_is_volume_fraction() {
        let dims = [8, 8, 8];
        let n: usize = dims.iter().product();
        let mask: Vec<f64> = (0..n).map(|i| ((i * 7) % 3 == 0) as u8 as f64).collect();
        let frac = mask.iter().sum::<f64>() / n as f64;
        let corr = two_point_correlation(&mask, dims);
        assert!((corr[0] - frac).abs() < 1e-10, "{} vs {frac}", corr[0]);
    }

    #[test]
    fn uncorrelated_limit_is_fraction_squared() {
        // For a random medium, S2 at large r ≈ f².
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let dims = [16, 16, 16];
        let n: usize = dims.iter().product();
        let mask: Vec<f64> = (0..n)
            .map(|_| (rng.random::<f64>() < 0.3) as u8 as f64)
            .collect();
        let corr = two_point_correlation(&mask, dims);
        let f = corr[0];
        // Offset (8,8,8): far from any correlation.
        let far = corr[(8 * 16 + 8) * 16 + 8];
        assert!((far - f * f).abs() < 0.02, "far {far} vs f² {}", f * f);
    }

    #[test]
    fn lamellar_structure_shows_periodicity() {
        // Stripes of period 8 along x: S₂ peaks again at r = (8,0,0).
        let dims = [32, 8, 8];
        let n: usize = dims.iter().product();
        let mut mask = vec![0.0; n];
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..32 {
                    if (x / 4) % 2 == 0 {
                        mask[(z * 8 + y) * 32 + x] = 1.0;
                    }
                }
            }
        }
        let corr = two_point_correlation(&mask, dims);
        let at = |x: usize| corr[x];
        assert!((at(0) - 0.5).abs() < 1e-12);
        assert!((at(8) - 0.5).abs() < 1e-12, "full period: {}", at(8));
        assert!(at(4) < 0.05, "anti-phase offset: {}", at(4));
    }

    #[test]
    fn radial_average_and_correlation_length() {
        let dims = [32, 8, 8];
        let n: usize = dims.iter().product();
        let mut mask = vec![0.0; n];
        for i in 0..n {
            if (i % 32) / 4 % 2 == 0 {
                mask[i] = 1.0;
            }
        }
        let corr = two_point_correlation(&mask, dims);
        let rad = radial_average(&corr, dims, 8);
        assert!((rad[0] - 0.5).abs() < 1e-12);
        // Monotone decay initially, then recovery towards the period.
        assert!(rad[1] < rad[0]);
        let l = correlation_length(&rad, 0.5).expect("has a correlation length");
        assert!((1..=4).contains(&l), "length {l}");
    }
}
