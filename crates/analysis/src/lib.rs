//! Microstructure analysis toolkit.
//!
//! The paper validates its simulations against experimental micrographs and
//! synchrotron tomography (Sec. 5.2, Figs. 10–11) and announces "a
//! quantitative comparison using Principal Component Analysis on two-point
//! correlation". This crate provides the quantitative side of that pipeline:
//!
//! * [`ccl`] — 3-D/2-D connected-component labeling (lamellae are the
//!   connected components of each solid phase),
//! * [`fft`] — a self-contained radix-2 FFT used by
//! * [`correlation`] — two-point (auto)correlation maps and their radial
//!   averages, and
//! * [`pca`] — principal component analysis over correlation maps,
//! * [`patterns`] — the cross-section pattern census of Fig. 10 (brick-like
//!   chains, connections and rings),
//! * [`lamellae`] — lamella tracking over time: the split and merge events
//!   shown in Fig. 11,
//! * [`front`] — solidification-front height map, roughness and velocity.

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

pub mod ccl;
pub mod correlation;
pub mod fft;
pub mod front;
pub mod lamellae;
pub mod patterns;
pub mod pca;
