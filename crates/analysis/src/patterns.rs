//! Cross-section pattern census — the Fig. 10 comparison.
//!
//! "In the experiment as well as the simulation, the phases arrange in
//! similar patterns as chained brick-like structures that are connected or
//! form ring-like structures" (Sec. 5.2, Fig. 10 annotations: *ring*,
//! *connection*, *chain*). This module classifies the connected components
//! of each solid phase in a cross-section perpendicular to the growth
//! direction into those classes, giving the quantitative census used to
//! compare against micrographs.

use crate::ccl::{label_2d, Labels};
use eutectica_core::state::BlockState;

/// Shape class of one lamella cross-section.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// Closed loop enclosing another phase.
    Ring,
    /// Branched or bent structure joining several lamellae.
    Connection,
    /// Elongated straight lamella section.
    Chain,
    /// Compact brick-like section.
    Brick,
}

/// Classification census of one cross-section of one phase.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternCensus {
    /// Ring-like components.
    pub rings: usize,
    /// Connections (branched/bent components).
    pub connections: usize,
    /// Chains (elongated straight components).
    pub chains: usize,
    /// Compact bricks.
    pub bricks: usize,
}

impl PatternCensus {
    /// Total classified components.
    pub fn total(&self) -> usize {
        self.rings + self.connections + self.chains + self.bricks
    }

    fn add(&mut self, c: ShapeClass) {
        match c {
            ShapeClass::Ring => self.rings += 1,
            ShapeClass::Connection => self.connections += 1,
            ShapeClass::Chain => self.chains += 1,
            ShapeClass::Brick => self.bricks += 1,
        }
    }
}

/// Classify one labeled component of a 2-D mask.
///
/// * **Ring**: the component encloses a hole (a background component not
///   connected to the image border).
/// * **Connection**: poor oriented-box fill (< 0.75): bent or branched.
/// * **Chain**: principal-axis aspect ratio ≥ 3.
/// * **Brick**: everything else (compact).
pub fn classify_component(
    labels: &Labels,
    dims: [usize; 2],
    component: u32,
    min_size: usize,
) -> Option<ShapeClass> {
    let [nx, ny] = dims;
    let pixels: Vec<(usize, usize)> = (0..nx * ny)
        .filter(|&i| labels.labels[i] == component)
        .map(|i| (i % nx, i / nx))
        .collect();
    if pixels.len() < min_size {
        return None;
    }

    // Hole detection: label the complement (non-periodic); any complement
    // component that never touches the image border and is 4-adjacent to
    // this component is an enclosed hole.
    let comp_mask: Vec<bool> = (0..nx * ny)
        .map(|i| labels.labels[i] != component)
        .collect();
    let holes = label_2d(&comp_mask, dims, [false, false]);
    let mut touches_border = vec![false; holes.count + 1];
    for y in 0..ny {
        for x in 0..nx {
            if x == 0 || y == 0 || x == nx - 1 || y == ny - 1 {
                let l = holes.labels[y * nx + x];
                if l != 0 {
                    touches_border[l as usize] = true;
                }
            }
        }
    }
    let mut adjacent_hole = false;
    'outer: for &(x, y) in &pixels {
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let (qx, qy) = (x as i64 + dx, y as i64 + dy);
            if qx < 0 || qy < 0 || qx >= nx as i64 || qy >= ny as i64 {
                continue;
            }
            let l = holes.labels[qy as usize * nx + qx as usize];
            if l != 0 && !touches_border[l as usize] {
                adjacent_hole = true;
                break 'outer;
            }
        }
    }
    if adjacent_hole {
        return Some(ShapeClass::Ring);
    }

    // Second moments (periodic-aware centering is skipped; components that
    // wrap are recentered by the minimal-image trick around the first pixel).
    let (x0, y0) = pixels[0];
    let wrap = |d: f64, n: f64| -> f64 {
        let mut d = d;
        if d > n / 2.0 {
            d -= n;
        }
        if d < -n / 2.0 {
            d += n;
        }
        d
    };
    let rel: Vec<(f64, f64)> = pixels
        .iter()
        .map(|&(x, y)| {
            (
                wrap(x as f64 - x0 as f64, nx as f64),
                wrap(y as f64 - y0 as f64, ny as f64),
            )
        })
        .collect();
    let n = rel.len() as f64;
    let (mx, my) = (
        rel.iter().map(|p| p.0).sum::<f64>() / n,
        rel.iter().map(|p| p.1).sum::<f64>() / n,
    );
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for &(x, y) in &rel {
        let (dx, dy) = (x - mx, y - my);
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    sxx /= n;
    syy /= n;
    sxy /= n;
    // Eigenvalues of the 2×2 covariance.
    let tr = sxx + syy;
    let det = sxx * syy - sxy * sxy;
    let disc = (tr * tr / 4.0 - det).max(0.0).sqrt();
    let l1 = (tr / 2.0 + disc).max(1e-12);
    let l2 = (tr / 2.0 - disc).max(1e-12);
    let aspect = (l1 / l2).sqrt();
    // Oriented-rectangle fill: a uniform a×b rectangle has λ = (a², b²)/12.
    let rect_area = 12.0 * (l1 * l2).sqrt();
    let fill = pixels.len() as f64 / rect_area.max(1.0);

    if fill < 0.75 && pixels.len() >= 12 {
        Some(ShapeClass::Connection)
    } else if aspect >= 3.0 {
        Some(ShapeClass::Chain)
    } else {
        Some(ShapeClass::Brick)
    }
}

/// Census of one solid phase in the cross-section at total z-coordinate `z`
/// of a block (periodic x/y, threshold φ > 0.5, components of fewer than
/// `min_size` cells ignored).
pub fn census_slice(state: &BlockState, phase: usize, z: usize, min_size: usize) -> PatternCensus {
    let d = state.dims;
    let g = d.ghost;
    let (nx, ny) = (d.nx, d.ny);
    let mask: Vec<bool> = (0..nx * ny)
        .map(|i| {
            let (x, y) = (i % nx, i / nx);
            state.phi_src.at(phase, x + g, y + g, z) > 0.5
        })
        .collect();
    let labels = label_2d(&mask, [nx, ny], [true, true]);
    let mut census = PatternCensus::default();
    for c in 1..=labels.count as u32 {
        if let Some(class) = classify_component(&labels, [nx, ny], c, min_size) {
            census.add(class);
        }
    }
    census
}

/// Census over a range of slices, accumulated (the statistics the paper's
/// micrograph comparison would aggregate over several cross sections).
pub fn census_volume(
    state: &BlockState,
    phase: usize,
    z_range: core::ops::Range<usize>,
    min_size: usize,
) -> PatternCensus {
    let mut total = PatternCensus::default();
    for z in z_range {
        let c = census_slice(state, phase, z, min_size);
        total.rings += c.rings;
        total.connections += c.connections;
        total.chains += c.chains;
        total.bricks += c.bricks;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels_of(mask: &[bool], dims: [usize; 2]) -> Labels {
        label_2d(mask, dims, [false, false])
    }

    #[test]
    fn ring_is_detected() {
        let n = 16;
        let mut mask = vec![false; n * n];
        for y in 0..n {
            for x in 0..n {
                let on = (3..=10).contains(&x)
                    && (3..=10).contains(&y)
                    && !((5..=8).contains(&x) && (5..=8).contains(&y));
                mask[y * n + x] = on;
            }
        }
        let l = labels_of(&mask, [n, n]);
        assert_eq!(l.count, 1);
        assert_eq!(classify_component(&l, [n, n], 1, 4), Some(ShapeClass::Ring));
    }

    #[test]
    fn straight_bar_is_chain() {
        let n = 24;
        let mut mask = vec![false; n * n];
        for y in 10..13 {
            for x in 2..22 {
                mask[y * n + x] = true;
            }
        }
        let l = labels_of(&mask, [n, n]);
        assert_eq!(
            classify_component(&l, [n, n], 1, 4),
            Some(ShapeClass::Chain)
        );
    }

    #[test]
    fn square_is_brick() {
        let n = 16;
        let mut mask = vec![false; n * n];
        for y in 4..10 {
            for x in 4..10 {
                mask[y * n + x] = true;
            }
        }
        let l = labels_of(&mask, [n, n]);
        assert_eq!(
            classify_component(&l, [n, n], 1, 4),
            Some(ShapeClass::Brick)
        );
    }

    #[test]
    fn l_shape_is_connection() {
        let n = 24;
        let mut mask = vec![false; n * n];
        for y in 2..20 {
            for x in 2..5 {
                mask[y * n + x] = true;
            }
        }
        for x in 2..20 {
            for y in 17..20 {
                mask[y * n + x] = true;
            }
        }
        let l = labels_of(&mask, [n, n]);
        assert_eq!(
            classify_component(&l, [n, n], 1, 4),
            Some(ShapeClass::Connection)
        );
    }

    #[test]
    fn small_components_filtered() {
        let n = 8;
        let mut mask = vec![false; n * n];
        mask[0] = true;
        let l = labels_of(&mask, [n, n]);
        assert_eq!(classify_component(&l, [n, n], 1, 4), None);
    }

    #[test]
    fn volume_census_accumulates_slices() {
        use eutectica_blockgrid::GridDims;
        use eutectica_core::regions::{build_scenario, Scenario};
        let s = build_scenario(Scenario::Solid, GridDims::cube(24));
        let g = s.dims.ghost;
        let single = census_slice(&s, 0, g + 12, 4);
        let volume = census_volume(&s, 0, g + 10..g + 14, 4);
        assert!(volume.total() >= single.total());
        assert_eq!(census_volume(&s, 0, g..g, 4).total(), 0, "empty range");
    }

    #[test]
    fn census_counts_lamellae_in_scenario_state() {
        use eutectica_blockgrid::GridDims;
        use eutectica_core::regions::{build_scenario, Scenario};
        let s = build_scenario(Scenario::Solid, GridDims::cube(24));
        let mut total = 0;
        for phase in 0..3 {
            let c = census_slice(&s, phase, 12, 4);
            total += c.total();
            // x-lamellae appear as elongated structures (chains) or wrapped
            // bands; nothing should be classified as a ring.
            assert_eq!(c.rings, 0, "phase {phase}: {c:?}");
        }
        assert!(total >= 3, "no lamellae found in solid scenario");
    }
}
