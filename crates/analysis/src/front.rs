//! Solidification-front geometry: height map, roughness, velocity.
//!
//! The directional-solidification front (F_Ω in the paper's Sec. 2) is the
//! observable that couples the microstructure to the process parameters:
//! its mean position tracks the pulling velocity in steady state, and its
//! roughness measures how strongly the lamellar structure corrugates the
//! growth front.

use eutectica_core::state::BlockState;
use eutectica_core::LIQ;

/// Per-column front height: for each (x, y) column of the interior, the
/// interpolated global z where the solid fraction (1 − φ_ℓ) crosses 0.5,
/// scanning from the top. Columns that are entirely liquid report the block
/// bottom; entirely solid columns report the top.
pub fn front_height_map(state: &BlockState) -> Vec<f64> {
    let d = state.dims;
    let g = d.ghost;
    let z0 = state.origin[2] as f64;
    let mut map = Vec::with_capacity(d.nx * d.ny);
    for y in 0..d.ny {
        for x in 0..d.nx {
            let solid_at = |z: usize| -> f64 { 1.0 - state.phi_src.at(LIQ, x + g, y + g, z + g) };
            let mut h = z0; // default: no solid found
            if solid_at(d.nz - 1) >= 0.5 {
                h = z0 + (d.nz - 1) as f64;
            } else {
                for z in (0..d.nz - 1).rev() {
                    let (lo, hi) = (solid_at(z), solid_at(z + 1));
                    if lo >= 0.5 && hi < 0.5 {
                        // Linear interpolation of the 0.5 crossing.
                        let t = (lo - 0.5) / (lo - hi);
                        h = z0 + z as f64 + t;
                        break;
                    }
                }
            }
            map.push(h);
        }
    }
    map
}

/// Mean front position.
pub fn front_mean(map: &[f64]) -> f64 {
    map.iter().sum::<f64>() / map.len() as f64
}

/// RMS front roughness (standard deviation of the height map).
pub fn front_roughness(map: &[f64]) -> f64 {
    let mean = front_mean(map);
    (map.iter().map(|h| (h - mean) * (h - mean)).sum::<f64>() / map.len() as f64).sqrt()
}

/// Total diffuse-interface area density: ∫|∇φ_α| dV per unit volume,
/// summed over the three solid phases (a standard microstructure-coarsening
/// metric; lamella coarsening lowers it, front growth raises it).
pub fn interface_area_density(state: &BlockState) -> f64 {
    let d = state.dims;
    let g = d.ghost;
    let mut total = 0.0;
    for a in 0..3 {
        let comp = state.phi_src.comp(a);
        for z in g..g + d.nz {
            for y in g..g + d.ny {
                for x in g..g + d.nx {
                    let i = d.idx(x, y, z);
                    let gx = 0.5 * (comp[i + 1] - comp[i - 1]);
                    let gy = 0.5 * (comp[i + d.sy()] - comp[i - d.sy()]);
                    let gz = 0.5 * (comp[i + d.sz()] - comp[i - d.sz()]);
                    total += (gx * gx + gy * gy + gz * gz).sqrt();
                }
            }
        }
    }
    total / d.interior_volume() as f64
}

/// Mean front velocity between two height maps separated by `dt_total`
/// time units (moving-window shifts are already absorbed in the global z
/// of the maps).
pub fn front_velocity(before: &[f64], after: &[f64], dt_total: f64) -> f64 {
    assert_eq!(before.len(), after.len());
    assert!(dt_total > 0.0);
    (front_mean(after) - front_mean(before)) / dt_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::GridDims;
    use eutectica_core::init::init_planar_front;
    use eutectica_core::state::BlockState;

    #[test]
    fn planar_front_height_and_roughness() {
        let mut s = BlockState::new(GridDims::new(6, 6, 20, 1), [0, 0, 0]);
        init_planar_front(&mut s, 0, 8); // solid for global z < 8
        let map = front_height_map(&s);
        assert_eq!(map.len(), 36);
        // Sharp interface between z = 7 (solid) and z = 8 (liquid):
        // crossing at 7.5.
        for &h in &map {
            assert!((h - 7.5).abs() < 0.51, "height {h}");
        }
        assert!(front_roughness(&map) < 1e-9);
    }

    #[test]
    fn window_origin_offsets_the_heights() {
        let mut s = BlockState::new(GridDims::new(4, 4, 12, 1), [0, 0, 25]);
        // Solid below global z = 30 (local z < 5).
        init_planar_front(&mut s, 1, 30);
        let map = front_height_map(&s);
        assert!(
            (front_mean(&map) - 29.5).abs() < 0.51,
            "{}",
            front_mean(&map)
        );
    }

    #[test]
    fn velocity_from_two_maps() {
        let before = vec![10.0; 16];
        let after = vec![12.5; 16];
        assert!((front_velocity(&before, &after, 5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rough_front_reports_positive_roughness() {
        let mut s = BlockState::new(GridDims::new(8, 1, 20, 1), [0, 0, 0]);
        // Staircase front: height varies with x.
        let g = 1;
        for x in 0..8usize {
            let h = 5 + x % 4;
            for z in 0..20usize {
                let phi = if z < h {
                    [1.0, 0.0, 0.0, 0.0]
                } else {
                    [0.0, 0.0, 0.0, 1.0]
                };
                s.phi_src.set_cell(x + g, g, z + g, phi);
            }
        }
        let map = front_height_map(&s);
        assert!(front_roughness(&map) > 0.5);
    }

    #[test]
    fn interface_area_scales_with_front_area() {
        // One planar solid/liquid interface in an n² × 20 box contributes
        // ≈ n² of |∇φ| integral → density ≈ 1/20.
        let mut s = BlockState::new(GridDims::new(8, 8, 20, 1), [0, 0, 0]);
        init_planar_front(&mut s, 0, 10);
        s.apply_bc_src();
        let rho = interface_area_density(&s);
        assert!((rho - 1.0 / 20.0).abs() < 0.02, "density {rho}");
        // All liquid: zero.
        let s2 = BlockState::new(GridDims::cube(8), [0, 0, 0]);
        assert_eq!(interface_area_density(&s2), 0.0);
    }

    #[test]
    fn all_liquid_and_all_solid_columns() {
        let s = BlockState::new(GridDims::cube(6), [0, 0, 3]);
        let map = front_height_map(&s); // everything liquid
        assert!(map.iter().all(|&h| (h - 3.0).abs() < 1e-12));
        let mut s2 = BlockState::new(GridDims::cube(6), [0, 0, 0]);
        init_planar_front(&mut s2, 0, 100); // everything solid
        let map = front_height_map(&s2);
        assert!(map.iter().all(|&h| (h - 5.0).abs() < 1e-12));
    }
}
