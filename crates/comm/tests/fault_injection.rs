//! Collectives under deterministic fault injection: every operation must
//! either complete correctly or fail with a `CommError` within its timeout
//! — never hang. Each test body runs under a watchdog thread so a
//! reintroduced deadlock fails the test instead of stalling the suite.

use std::sync::mpsc;
use std::time::Duration;

use eutectica_comm::{
    bytes_to_f64s, f64s_to_bytes, CommError, FaultPlan, ReduceOp, Universe, UniverseCfg,
    COLLECTIVE_TAG,
};

/// Run `f` on its own thread and panic if it does not finish in `limit`.
fn watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("watchdogged-test".into())
        .spawn(move || {
            let out = f();
            let _ = tx.send(());
            out
        })
        .unwrap();
    match rx.recv_timeout(limit) {
        Ok(()) => handle.join().expect("test body panicked"),
        Err(_) => panic!("test hung: no completion within {limit:?}"),
    }
}

const WATCHDOG: Duration = Duration::from_secs(60);

fn cfg_with(plan: FaultPlan) -> UniverseCfg {
    // Short op timeout so dropped messages surface fast; detection still
    // races far ahead of the watchdog.
    UniverseCfg::with_timeout(Duration::from_millis(400)).with_faults(plan)
}

/// Whatever faults hit the collectives, every rank must come back with
/// either a correct value or a CommError — and agree on which.
fn outcome_is_sane<T: PartialEq + std::fmt::Debug>(results: &[Result<T, CommError>], expected: &T) {
    for (rank, r) in results.iter().enumerate() {
        match r {
            Ok(v) => assert_eq!(v, expected, "rank {rank} got a wrong value"),
            Err(CommError::Timeout { .. })
            | Err(CommError::RankDead { .. })
            | Err(CommError::Shutdown { .. }) => {}
        }
    }
}

#[test]
fn allreduce_with_dropped_messages_errors_or_completes() {
    watchdog(WATCHDOG, || {
        for seed in 0..8 {
            let plan = FaultPlan::new(seed).drop_messages(Some(COLLECTIVE_TAG | 1), 0.4);
            let got = Universe::run_checked(4, cfg_with(plan), |r| {
                r.allreduce_f64_checked(r.rank() as f64 + 1.0, ReduceOp::Sum)
            })
            .expect("no rank should die from dropped messages");
            outcome_is_sane(&got, &10.0);
        }
    });
}

#[test]
fn allreduce_with_duplicated_messages_stays_correct() {
    watchdog(WATCHDOG, || {
        // Duplicates are absorbed by source+tag matching: the stray copy
        // sits in the pending store and the reduction result is unchanged.
        for seed in 0..8 {
            let plan = FaultPlan::new(seed).duplicate_messages(None, 0.5);
            let got = Universe::run_checked(4, cfg_with(plan), |r| {
                r.allreduce_f64_checked(r.rank() as f64, ReduceOp::Max)
            })
            .expect("duplicates must not kill ranks");
            outcome_is_sane(&got, &3.0);
        }
    });
}

#[test]
fn gather_under_drops_and_duplicates_never_hangs() {
    watchdog(WATCHDOG, || {
        for seed in 0..8 {
            let plan = FaultPlan::new(seed)
                .drop_messages(Some(COLLECTIVE_TAG | 2), 0.3)
                .duplicate_messages(Some(COLLECTIVE_TAG | 2), 0.3);
            let got = Universe::run_checked(3, cfg_with(plan), |r| {
                r.gather_checked(0, f64s_to_bytes(&[r.rank() as f64]))
            })
            .expect("gather faults must not kill ranks");
            match &got[0] {
                Ok(Some(bufs)) => {
                    let v: Vec<f64> = bufs.iter().map(|b| bytes_to_f64s(b)[0]).collect();
                    assert_eq!(v, vec![0.0, 1.0, 2.0]);
                }
                Ok(None) => panic!("root must receive Some"),
                Err(e) => assert!(matches!(e, CommError::Timeout { .. }), "{e:?}"),
            }
            for (rank, r) in got.iter().enumerate().skip(1) {
                // Non-root ranks only send; they always succeed with None.
                assert!(matches!(r, Ok(None)), "rank {rank}: {r:?}");
            }
        }
    });
}

#[test]
fn broadcast_under_drops_errors_or_delivers() {
    watchdog(WATCHDOG, || {
        for seed in 0..8 {
            let plan = FaultPlan::new(seed).drop_messages(Some(COLLECTIVE_TAG | 3), 0.4);
            let got = Universe::run_checked(4, cfg_with(plan), |r| {
                r.broadcast_checked(1, f64s_to_bytes(&[if r.rank() == 1 { 6.5 } else { 0.0 }]))
                    .map(|b| bytes_to_f64s(&b)[0])
            })
            .expect("broadcast faults must not kill ranks");
            outcome_is_sane(&got, &6.5);
        }
    });
}

#[test]
fn corrupted_point_to_point_payload_is_delivered_corrupted() {
    watchdog(WATCHDOG, || {
        // Corruption flips exactly one deterministic bit; the transport
        // must deliver (detection is the checkpoint layer's CRC job).
        let plan = FaultPlan::new(3).corrupt_messages(Some(7), 1.0);
        let got = Universe::run_checked(2, cfg_with(plan), |r| {
            if r.rank() == 0 {
                r.send(1, 7, f64s_to_bytes(&[1.0]));
                Ok(0.0)
            } else {
                r.recv_checked(0, 7).map(|b| bytes_to_f64s(&b)[0])
            }
        })
        .unwrap();
        let received = got[1].as_ref().unwrap();
        assert_ne!(*received, 1.0, "payload should have been corrupted");
    });
}

#[test]
fn delayed_messages_arrive_within_timeout() {
    watchdog(WATCHDOG, || {
        let plan = FaultPlan::new(5).delay_messages(Some(9), 1.0, Duration::from_millis(30));
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(5)).with_faults(plan);
        let got = Universe::run_checked(2, cfg, |r| {
            if r.rank() == 0 {
                r.send(1, 9, f64s_to_bytes(&[2.5]));
                Ok(0.0)
            } else {
                r.recv_checked(0, 9).map(|b| bytes_to_f64s(&b)[0])
            }
        })
        .unwrap();
        assert_eq!(got[1], Ok(2.5));
    });
}

#[test]
fn rank_killed_mid_collective_surfaces_rank_dead() {
    watchdog(WATCHDOG, || {
        let plan = FaultPlan::new(0).kill(2, 1);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(20)).with_faults(plan);
        let err = Universe::run_checked(4, cfg, |r| {
            for step in 0..4u64 {
                r.fault_step(step);
                let v = r.allreduce_f64_checked(1.0, ReduceOp::Sum)?;
                assert_eq!(v, 4.0);
            }
            Ok::<(), CommError>(())
        })
        .unwrap_err();
        assert_eq!(err.dead[0].0, 2, "injected kill must be first death: {err}");
    });
}

#[test]
fn same_seed_same_faults_different_seed_different_faults() {
    watchdog(WATCHDOG, || {
        // Reproducibility: the set of ranks that observe errors under a
        // given seed is identical across runs.
        let observe = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).drop_messages(Some(COLLECTIVE_TAG | 1), 0.5);
            Universe::run_checked(4, cfg_with(plan), |r| {
                r.allreduce_f64_checked(1.0, ReduceOp::Sum).is_err()
            })
            .unwrap()
        };
        let a1 = observe(11);
        let a2 = observe(11);
        assert_eq!(a1, a2, "same seed must reproduce the same failures");
        let distinct = (0..32)
            .map(observe)
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "seeds must actually vary the faults");
    });
}
