//! Property-based tests of the message-passing substrate.

use eutectica_comm::{bytes_to_f64s, f64s_to_bytes, ReduceOp, Universe};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Payload serialization round-trips bit-exactly, including special
    /// values.
    #[test]
    fn payload_roundtrip(values in prop::collection::vec(any::<f64>(), 0..64)) {
        let b = f64s_to_bytes(&values);
        let back = bytes_to_f64s(&b);
        prop_assert_eq!(values.len(), back.len());
        for (x, y) in values.iter().zip(&back) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// allreduce(sum) over N ranks equals the serial sum, regardless of rank
    /// count and contributions.
    #[test]
    fn allreduce_sum_matches_serial(values in prop::collection::vec(-100.0..100.0f64, 1..6)) {
        let n = values.len();
        let expect: f64 = values.iter().sum();
        let vals = std::sync::Arc::new(values);
        let got = Universe::run(n, move |rank| {
            rank.allreduce_f64(vals[rank.rank()], ReduceOp::Sum)
        });
        for g in got {
            prop_assert!((g - expect).abs() < 1e-9);
        }
    }

    /// Messages between a random pair of ranks arrive intact and in order.
    #[test]
    fn point_to_point_in_order(n in 2usize..5, count in 1usize..8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = rng.random_range(0..n);
        let dst = (src + 1 + rng.random_range(0..n - 1)) % n;
        let payloads: Vec<Vec<f64>> = (0..count)
            .map(|k| vec![k as f64, rng.random_range(-1.0..1.0)])
            .collect();
        let payloads = std::sync::Arc::new(payloads);
        let expected = payloads.clone();
        let ok = Universe::run(n, move |rank| {
            if rank.rank() == src {
                for p in payloads.iter() {
                    rank.send(dst, 9, f64s_to_bytes(p));
                }
                true
            } else if rank.rank() == dst {
                (0..payloads.len()).all(|k| {
                    let got = bytes_to_f64s(&rank.recv(src, 9));
                    got == expected[k]
                })
            } else {
                true
            }
        });
        prop_assert!(ok.iter().all(|&b| b));
    }

    /// gather followed by broadcast distributes identical data everywhere.
    #[test]
    fn gather_broadcast_consistency(n in 1usize..6, root_pick in any::<u16>()) {
        let root = root_pick as usize % n;
        let got = Universe::run(n, move |rank| {
            let gathered = rank.gather(root, f64s_to_bytes(&[rank.rank() as f64 * 3.0]));
            let payload = if rank.rank() == root {
                let sum: f64 = gathered
                    .unwrap()
                    .iter()
                    .map(|b| bytes_to_f64s(b)[0])
                    .sum();
                f64s_to_bytes(&[sum])
            } else {
                f64s_to_bytes(&[f64::NAN]) // ignored on non-roots
            };
            bytes_to_f64s(&rank.broadcast(root, payload))[0]
        });
        let expect: f64 = (0..n).map(|r| r as f64 * 3.0).sum();
        for g in got {
            prop_assert!((g - expect).abs() < 1e-12);
        }
    }
}
