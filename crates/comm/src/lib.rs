//! Distributed-memory-style message passing over threads — the MPI substrate.
//!
//! The paper runs on up to 1,048,576 MPI processes. Mature Rust MPI bindings
//! are not available in this environment, so this crate provides the same
//! *communication structure* over OS threads: each rank is a thread with a
//! private mailbox, and all data crosses rank boundaries as explicit,
//! serialized byte messages — there is no shared-memory shortcut in the data
//! path, so pack/transfer/unpack costs and orderings are exercised exactly
//! like in an MPI build (see DESIGN.md §2, substitution 1).
//!
//! Supported operations mirror what the waLBerla phase-field app needs:
//!
//! * tagged, source-matched [`Rank::send`] / [`Rank::recv`] (buffered
//!   standard-mode semantics),
//! * nonblocking [`Rank::isend`] / [`Rank::irecv`] + [`Rank::wait`] — the
//!   primitives behind Algorithm 2's communication hiding,
//! * collectives: [`Rank::barrier`], [`Rank::allreduce_f64`],
//!   [`Rank::gather`], [`Rank::broadcast`] (used for front-position
//!   reduction of the moving window and for the hierarchical mesh
//!   reduction),
//! * byte-level payloads ([`bytes::Bytes`]) with f64 slice helpers, so ghost
//!   layers are genuinely packed and unpacked.
//!
//! # Example
//!
//! ```
//! use eutectica_comm::{Universe, f64s_to_bytes, bytes_to_f64s};
//!
//! let sums = Universe::run(4, |rank| {
//!     // Ring shift: everyone sends its id to the right neighbor.
//!     let right = (rank.rank() + 1) % rank.size();
//!     let left = (rank.rank() + rank.size() - 1) % rank.size();
//!     rank.send(right, 7, f64s_to_bytes(&[rank.rank() as f64]));
//!     let got = bytes_to_f64s(&rank.recv(left, 7));
//!     rank.allreduce_f64(got[0], eutectica_comm::ReduceOp::Sum)
//! });
//! assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3
//! ```

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use eutectica_telemetry::{Histogram, ReducedTree, TimingTreeSnapshot};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message tag. Tags with the top bit set are reserved for collectives.
pub type Tag = u32;

/// Tag bit reserved for collectives; user tags must keep it clear. Exposed
/// so traffic accounting can separate ghost exchange from collectives.
pub const COLLECTIVE_TAG: Tag = 1 << 31;

#[derive(Debug)]
struct Message {
    src: usize,
    tag: Tag,
    payload: Bytes,
}

/// Handle to a posted nonblocking receive; complete it with [`Rank::wait`].
#[derive(Debug, Clone, Copy)]
#[must_use = "irecv does nothing until waited on"]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
}

/// Reduction operators for [`Rank::allreduce_f64`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Per-tag traffic breakdown (one entry per distinct message tag, so the
/// solver can attribute traffic to fields — φ vs µ — and faces).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages sent under this tag.
    pub messages_sent: u64,
    /// Bytes received under this tag.
    pub bytes_received: u64,
    /// Messages received under this tag.
    pub messages_received: u64,
}

/// Cumulative per-rank communication statistics (drives the Fig. 8 analysis).
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Total bytes passed to `send`/`isend`.
    pub bytes_sent: u64,
    /// Number of point-to-point messages sent.
    pub messages_sent: u64,
    /// Total bytes pulled off the wire by this rank.
    pub bytes_received: u64,
    /// Number of point-to-point messages received.
    pub messages_received: u64,
    /// Wall time spent blocked inside `recv`/`wait`.
    pub recv_wait_time: Duration,
    /// Log2-bucket histogram of per-receive wait latency in nanoseconds
    /// (bucket 0 counts receives satisfied from the pending store).
    pub recv_wait_hist: Histogram,
    /// Traffic broken down by message tag (collective tags included).
    pub per_tag: BTreeMap<Tag, TagStats>,
}

impl CommStats {
    /// Accumulate another rank's statistics into this one (for
    /// Universe-level totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
        self.recv_wait_time += other.recv_wait_time;
        self.recv_wait_hist.merge(&other.recv_wait_hist);
        for (tag, t) in &other.per_tag {
            let e = self.per_tag.entry(*tag).or_default();
            e.bytes_sent += t.bytes_sent;
            e.messages_sent += t.messages_sent;
            e.bytes_received += t.bytes_received;
            e.messages_received += t.messages_received;
        }
    }
}

/// Per-rank and aggregated communication statistics for a whole
/// [`Universe::run_with_stats`] execution.
#[derive(Clone, Debug, Default)]
pub struct CommSummary {
    /// Final statistics of each rank, in rank order.
    pub per_rank: Vec<CommStats>,
    /// Element-wise sum over all ranks.
    pub total: CommStats,
}

impl CommSummary {
    /// Build the aggregate from per-rank snapshots.
    pub fn from_per_rank(per_rank: Vec<CommStats>) -> Self {
        let mut total = CommStats::default();
        for s in &per_rank {
            total.merge(s);
        }
        Self { per_rank, total }
    }

    /// Human-readable table: one line per rank plus the totals line.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{:<8} {:>14} {:>10} {:>14} {:>10} {:>14}\n",
            "rank", "sent B", "sent #", "recv B", "recv #", "recv wait s"
        );
        let line = |name: &str, s: &CommStats| {
            format!(
                "{:<8} {:>14} {:>10} {:>14} {:>10} {:>14.6}\n",
                name,
                s.bytes_sent,
                s.messages_sent,
                s.bytes_received,
                s.messages_received,
                s.recv_wait_time.as_secs_f64()
            )
        };
        for (r, s) in self.per_rank.iter().enumerate() {
            out.push_str(&line(&r.to_string(), s));
        }
        out.push_str(&line("total", &self.total));
        out
    }
}

/// One participant of a [`Universe`]; the analog of an MPI rank.
pub struct Rank {
    rank: usize,
    size: usize,
    txs: Arc<Vec<Sender<Message>>>,
    rx: Receiver<Message>,
    /// Messages received but not yet matched by a recv, keyed by (src, tag).
    pending: RefCell<HashMap<(usize, Tag), VecDeque<Bytes>>>,
    barrier: Arc<std::sync::Barrier>,
    stats: RefCell<CommStats>,
    /// Where to deposit the final stats when the rank thread finishes
    /// (set by [`Universe::run_with_stats`]).
    stats_sink: Option<Arc<Mutex<Vec<Option<CommStats>>>>>,
}

impl Drop for Rank {
    fn drop(&mut self) {
        if let Some(sink) = &self.stats_sink {
            sink.lock()[self.rank] = Some(self.stats.borrow().clone());
        }
    }
}

impl Rank {
    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to rank `dst` with `tag` (buffered; returns
    /// immediately, like MPI standard mode with a buffered payload).
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) {
        assert!(tag & COLLECTIVE_TAG == 0, "tag reserved for collectives");
        self.send_raw(dst, tag, payload);
    }

    fn send_raw(&self, dst: usize, tag: Tag, payload: Bytes) {
        let mut stats = self.stats.borrow_mut();
        stats.bytes_sent += payload.len() as u64;
        stats.messages_sent += 1;
        let t = stats.per_tag.entry(tag).or_default();
        t.bytes_sent += payload.len() as u64;
        t.messages_sent += 1;
        drop(stats);
        self.txs[dst]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Nonblocking send. With thread-backed buffered channels the transfer
    /// is complete on return, so no request object is needed; the name keeps
    /// the call sites structurally identical to the MPI original.
    #[inline]
    pub fn isend(&self, dst: usize, tag: Tag, payload: Bytes) {
        self.send(dst, tag, payload);
    }

    /// Post a nonblocking receive for a message from `src` with `tag`.
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        RecvRequest { src, tag }
    }

    /// Complete a posted receive, blocking until the message arrives.
    pub fn wait(&self, req: RecvRequest) -> Bytes {
        self.recv_matched(req.src, req.tag)
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(&self, src: usize, tag: Tag) -> Bytes {
        assert!(tag & COLLECTIVE_TAG == 0, "tag reserved for collectives");
        self.recv_matched(src, tag)
    }

    /// Account for one message pulled off the wire (on arrival, whether it
    /// matches the current receive or goes to the pending store).
    fn note_received(&self, tag: Tag, len: usize) {
        let mut stats = self.stats.borrow_mut();
        stats.bytes_received += len as u64;
        stats.messages_received += 1;
        let t = stats.per_tag.entry(tag).or_default();
        t.bytes_received += len as u64;
        t.messages_received += 1;
    }

    fn recv_matched(&self, src: usize, tag: Tag) -> Bytes {
        // Fast path: already in the pending store — zero wait.
        if let Some(q) = self.pending.borrow_mut().get_mut(&(src, tag)) {
            if let Some(b) = q.pop_front() {
                self.stats.borrow_mut().recv_wait_hist.record(0);
                return b;
            }
        }
        let start = Instant::now();
        loop {
            let msg = self.rx.recv().expect("universe shut down mid-recv");
            self.note_received(msg.tag, msg.payload.len());
            if msg.src == src && msg.tag == tag {
                let waited = start.elapsed();
                let mut stats = self.stats.borrow_mut();
                stats.recv_wait_time += waited;
                stats.recv_wait_hist.record(waited.as_nanos() as u64);
                return msg.payload;
            }
            self.pending
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(msg.payload);
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce a single f64 over all ranks.
    ///
    /// Implemented as gather-to-0 + broadcast over point-to-point messages
    /// (log-depth trees are unnecessary at thread scale; the *semantics*
    /// match MPI_Allreduce).
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        let tag = COLLECTIVE_TAG | 1;
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let b = self.recv_matched(src, tag);
                acc = op.apply(
                    acc,
                    f64::from_bits(u64::from_le_bytes(b[..8].try_into().unwrap())),
                );
            }
            for dst in 1..self.size {
                self.send_raw(
                    dst,
                    tag,
                    Bytes::copy_from_slice(&acc.to_bits().to_le_bytes()),
                );
            }
            acc
        } else {
            self.send_raw(
                0,
                tag,
                Bytes::copy_from_slice(&value.to_bits().to_le_bytes()),
            );
            let b = self.recv_matched(0, tag);
            f64::from_bits(u64::from_le_bytes(b[..8].try_into().unwrap()))
        }
    }

    /// Gather byte payloads on `root`; returns `Some(per-rank payloads)` on
    /// the root, `None` elsewhere.
    pub fn gather(&self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        let tag = COLLECTIVE_TAG | 2;
        if self.rank == root {
            let mut out = vec![Bytes::new(); self.size];
            out[root] = payload;
            for src in 0..self.size {
                if src != root {
                    out[src] = self.recv_matched(src, tag);
                }
            }
            Some(out)
        } else {
            self.send_raw(root, tag, payload);
            None
        }
    }

    /// Broadcast `payload` (significant on `root`) to all ranks.
    pub fn broadcast(&self, root: usize, payload: Bytes) -> Bytes {
        let tag = COLLECTIVE_TAG | 3;
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send_raw(dst, tag, payload.clone());
                }
            }
            payload
        } else {
            self.recv_matched(root, tag)
        }
    }

    /// Snapshot of this rank's communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Reset the statistics counters (e.g. after warmup timesteps).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Reduce a telemetry timing tree across all ranks (min/avg/max per
    /// node, the waLBerla reduced-timing-pool pattern). Collective: every
    /// rank must call it. Returns `Some` on rank 0, `None` elsewhere.
    pub fn reduce_timing(&self, snap: &TimingTreeSnapshot) -> Option<ReducedTree> {
        eutectica_telemetry::reduce_with(snap, |payload| {
            self.gather(0, Bytes::from(payload))
                .map(|bufs| bufs.iter().map(|b| b.to_vec()).collect())
        })
    }
}

/// A set of ranks executing the same function — the analog of
/// `mpirun -np N`.
pub struct Universe;

impl Universe {
    /// Spawn `n` ranks running `f` and collect their return values in rank
    /// order. Panics in any rank propagate.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        Self::run_inner(n, f, None)
    }

    /// Like [`Universe::run`], but additionally collects every rank's final
    /// [`CommStats`] into an aggregated [`CommSummary`].
    pub fn run_with_stats<T, F>(n: usize, f: F) -> (Vec<T>, CommSummary)
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        let sink: Arc<Mutex<Vec<Option<CommStats>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let out = Self::run_inner(n, f, Some(Arc::clone(&sink)));
        let per_rank = Arc::try_unwrap(sink)
            .unwrap_or_else(|_| panic!("stats sink still shared"))
            .into_inner()
            .into_iter()
            .map(|s| s.expect("rank deposited no stats"))
            .collect();
        (out, CommSummary::from_per_rank(per_rank))
    }

    fn run_inner<T, F>(
        n: usize,
        f: F,
        stats_sink: Option<Arc<Mutex<Vec<Option<CommStats>>>>>,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "need at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        let mut handles = Vec::with_capacity(n);
        for (rank_id, rx) in rxs.into_iter().enumerate() {
            let rank = Rank {
                rank: rank_id,
                size: n,
                txs: Arc::clone(&txs),
                rx,
                pending: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                stats: RefCell::new(CommStats::default()),
                stats_sink: stats_sink.clone(),
            };
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank_id}"))
                    .stack_size(8 << 20)
                    .spawn(move || {
                        let out = f(rank);
                        results.lock()[rank_id] = Some(out);
                    })
                    .expect("spawn rank thread"),
            );
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
        Arc::try_unwrap(results)
            .unwrap_or_else(|_| panic!("results still shared"))
            .into_inner()
            .into_iter()
            .map(|o| o.expect("rank produced no result"))
            .collect()
    }
}

/// Cartesian process-grid helper (the analog of `MPI_Cart_create`): maps a
/// rank onto coordinates of a `[px, py, pz]` grid and resolves face
/// neighbors with optional periodic wrap — the topology the halo exchange
/// of the block decomposition runs on.
#[derive(Copy, Clone, Debug)]
pub struct CartComm {
    /// Ranks per axis.
    pub dims: [usize; 3],
    /// Periodicity per axis.
    pub periodic: [bool; 3],
}

impl CartComm {
    /// Create a Cartesian layout; `dims` must multiply to the rank count it
    /// is used with.
    pub fn new(dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "empty Cartesian grid");
        Self { dims, periodic }
    }

    /// Total ranks of the grid.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of `rank` (x fastest).
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.size());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank of `coords`.
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        for a in 0..3 {
            assert!(coords[a] < self.dims[a]);
        }
        (coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0]
    }

    /// Neighbor of `rank` one step along `axis` in direction `dir` (±1);
    /// `None` at a non-periodic boundary.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> Option<usize> {
        assert!(axis < 3 && (dir == 1 || dir == -1));
        let mut c = self.coords(rank);
        let n = self.dims[axis] as i64;
        let next = c[axis] as i64 + dir as i64;
        if next < 0 || next >= n {
            if self.periodic[axis] {
                c[axis] = ((next + n) % n) as usize;
            } else {
                return None;
            }
        } else {
            c[axis] = next as usize;
        }
        Some(self.rank_of(c))
    }
}

/// Serialize a f64 slice into a byte payload (little-endian).
pub fn f64s_to_bytes(vals: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deserialize a byte payload back into f64s.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn bytes_to_f64s(b: &Bytes) -> Vec<f64> {
    assert!(b.len() % 8 == 0, "payload not f64-aligned");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Deserialize a byte payload into an existing buffer (allocation-free path
/// used by the ghost-layer exchange every timestep).
pub fn bytes_to_f64s_into(b: &Bytes, out: &mut Vec<f64>) {
    assert!(b.len() % 8 == 0, "payload not f64-aligned");
    out.clear();
    out.extend(
        b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let got = Universe::run(5, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            r.send(right, 1, f64s_to_bytes(&[r.rank() as f64 * 2.0]));
            bytes_to_f64s(&r.recv(left, 1))[0]
        });
        assert_eq!(got, vec![8.0, 0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn out_of_order_matching_by_tag() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 10, f64s_to_bytes(&[1.0]));
                r.send(1, 20, f64s_to_bytes(&[2.0]));
                0.0
            } else {
                let b = bytes_to_f64s(&r.recv(0, 20))[0];
                let a = bytes_to_f64s(&r.recv(0, 10))[0];
                10.0 * a + b
            }
        });
        assert_eq!(got[1], 12.0);
    }

    #[test]
    fn fifo_within_same_src_tag() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                for i in 0..10 {
                    r.send(1, 5, f64s_to_bytes(&[i as f64]));
                }
                vec![]
            } else {
                (0..10).map(|_| bytes_to_f64s(&r.recv(0, 5))[0]).collect()
            }
        });
        assert_eq!(got[1], (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn self_send_works() {
        let got = Universe::run(1, |r| {
            r.send(0, 3, f64s_to_bytes(&[42.0]));
            bytes_to_f64s(&r.recv(0, 3))[0]
        });
        assert_eq!(got, vec![42.0]);
    }

    #[test]
    fn irecv_wait_overlap_pattern() {
        // The Algorithm-2 pattern: post receives, send, compute, then wait.
        let got = Universe::run(3, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            let req = r.irecv(left, 9);
            r.isend(right, 9, f64s_to_bytes(&[r.rank() as f64]));
            let local = 100.0 * r.rank() as f64; // "compute"
            let remote = bytes_to_f64s(&r.wait(req))[0];
            local + remote
        });
        assert_eq!(got, vec![2.0, 100.0, 201.0]);
    }

    #[test]
    fn allreduce_ops() {
        for (op, expect) in [
            (ReduceOp::Sum, 0.0 + 1.0 + 2.0 + 3.0),
            (ReduceOp::Min, 0.0),
            (ReduceOp::Max, 3.0),
        ] {
            let got = Universe::run(4, move |r| r.allreduce_f64(r.rank() as f64, op));
            assert_eq!(got, vec![expect; 4], "{op:?}");
        }
    }

    #[test]
    fn gather_and_broadcast() {
        let got = Universe::run(4, |r| {
            let gathered = r.gather(2, f64s_to_bytes(&[r.rank() as f64]));
            if r.rank() == 2 {
                let v: Vec<f64> = gathered
                    .unwrap()
                    .iter()
                    .map(|b| bytes_to_f64s(b)[0])
                    .collect();
                assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
            } else {
                assert!(gathered.is_none());
            }
            let b = r.broadcast(1, f64s_to_bytes(&[7.5 * (r.rank() == 1) as u8 as f64]));
            bytes_to_f64s(&b)[0]
        });
        assert_eq!(got, vec![7.5; 4]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE1: AtomicUsize = AtomicUsize::new(0);
        let got = Universe::run(4, |r| {
            PHASE1.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            PHASE1.load(Ordering::SeqCst)
        });
        assert_eq!(got, vec![4; 4]);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, f64s_to_bytes(&[1.0, 2.0, 3.0]));
                r.send(1, 2, f64s_to_bytes(&[4.0]));
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 2);
            }
            r.barrier();
            let s = r.stats();
            (
                s.bytes_sent,
                s.messages_sent,
                s.bytes_received,
                s.messages_received,
            )
        });
        assert_eq!(got[0], (32, 2, 0, 0));
        assert_eq!(got[1], (0, 0, 32, 2));
    }

    #[test]
    fn per_tag_breakdown_tracks_both_directions() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, f64s_to_bytes(&[1.0, 2.0, 3.0]));
                r.send(1, 2, f64s_to_bytes(&[4.0]));
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 2);
            }
            r.barrier();
            r.stats()
        });
        assert_eq!(got[0].per_tag[&1].bytes_sent, 24);
        assert_eq!(got[0].per_tag[&2].bytes_sent, 8);
        assert_eq!(got[0].per_tag[&1].bytes_received, 0);
        assert_eq!(got[1].per_tag[&1].bytes_received, 24);
        assert_eq!(got[1].per_tag[&2].messages_received, 1);
        // Every receive left a latency observation.
        assert_eq!(got[1].recv_wait_hist.count(), 2);
    }

    #[test]
    fn universe_summary_aggregates_ranks() {
        let (_, summary) = Universe::run_with_stats(3, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            r.send(right, 4, f64s_to_bytes(&[0.0; 4]));
            let _ = r.recv(left, 4);
        });
        assert_eq!(summary.per_rank.len(), 3);
        assert_eq!(summary.total.bytes_sent, 3 * 32);
        assert_eq!(summary.total.bytes_received, 3 * 32);
        assert_eq!(summary.total.messages_sent, 3);
        assert_eq!(summary.total.messages_received, 3);
        assert_eq!(summary.total.per_tag[&4].bytes_sent, 96);
        let rep = summary.report();
        assert!(rep.contains("total"));
        assert!(rep.lines().count() >= 5, "{rep}");
    }

    #[test]
    fn timing_tree_reduces_across_ranks() {
        use eutectica_telemetry::Telemetry;
        let got = Universe::run(4, |r| {
            let tel = Telemetry::new(r.rank());
            {
                let _step = tel.span("step");
                let _inner = tel.span_cat("exchange", "comm");
            }
            let red = r.reduce_timing(&tel.tree_snapshot());
            assert_eq!(red.is_some(), r.rank() == 0);
            red.map(|t| {
                (
                    t.n_ranks,
                    t.rows
                        .iter()
                        .map(|row| row.path.clone())
                        .collect::<Vec<_>>(),
                )
            })
        });
        let (n, paths) = got[0].clone().unwrap();
        assert_eq!(n, 4);
        assert_eq!(paths, ["step", "step/exchange"]);
    }

    #[test]
    fn cart_comm_coordinates_and_neighbors() {
        let c = CartComm::new([4, 3, 2], [true, false, true]);
        assert_eq!(c.size(), 24);
        for r in 0..24 {
            assert_eq!(c.rank_of(c.coords(r)), r);
        }
        // Periodic x wraps.
        assert_eq!(c.neighbor(0, 0, -1), Some(3));
        assert_eq!(c.neighbor(3, 0, 1), Some(0));
        // Open y stops at the boundary.
        assert_eq!(c.neighbor(0, 1, -1), None);
        assert_eq!(c.neighbor(c.rank_of([0, 2, 0]), 1, 1), None);
        assert_eq!(c.neighbor(0, 1, 1), Some(4));
        // Periodic z wraps across the slowest axis.
        assert_eq!(c.neighbor(0, 2, -1), Some(12));
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let vals = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        let b = f64s_to_bytes(&vals);
        assert_eq!(bytes_to_f64s(&b), vals);
        let mut out = Vec::new();
        bytes_to_f64s_into(&b, &mut out);
        assert_eq!(out, vals);
    }
}
