//! Distributed-memory-style message passing over threads — the MPI substrate.
//!
//! The paper runs on up to 1,048,576 MPI processes. Mature Rust MPI bindings
//! are not available in this environment, so this crate provides the same
//! *communication structure* over OS threads: each rank is a thread with a
//! private mailbox, and all data crosses rank boundaries as explicit,
//! serialized byte messages — there is no shared-memory shortcut in the data
//! path, so pack/transfer/unpack costs and orderings are exercised exactly
//! like in an MPI build (see DESIGN.md §2, substitution 1).
//!
//! Supported operations mirror what the waLBerla phase-field app needs:
//!
//! * tagged, source-matched [`Rank::send`] / [`Rank::recv`] (buffered
//!   standard-mode semantics),
//! * nonblocking [`Rank::isend`] / [`Rank::irecv`] + [`Rank::wait`] — the
//!   primitives behind Algorithm 2's communication hiding,
//! * collectives: [`Rank::barrier`], [`Rank::allreduce_f64`],
//!   [`Rank::gather`], [`Rank::broadcast`] (used for front-position
//!   reduction of the moving window and for the hierarchical mesh
//!   reduction),
//! * byte-level payloads ([`bytes::Bytes`]) with f64 slice helpers, so ghost
//!   layers are genuinely packed and unpacked.
//!
//! # Fault tolerance
//!
//! Production runs at the paper's scale must expect rank failures, so the
//! substrate provides *failure detection* rather than silent deadlock:
//!
//! * every blocking operation has a `_checked` variant returning
//!   [`CommError`] instead of hanging when a peer dies or a timeout expires
//!   (the plain variants panic with the same diagnostic);
//! * a rank that panics is reaped by the universe: surviving ranks observe
//!   [`CommError::RankDead`] within the failure-detection poll interval,
//!   and [`Universe::run_checked`] reports *which* ranks died;
//! * a deterministic, seed-driven [`FaultPlan`] can kill ranks at chosen
//!   steps and drop / duplicate / corrupt / delay messages by tag, so
//!   fault-handling paths are testable and failures reproduce exactly.
//!
//! # Example
//!
//! ```
//! use eutectica_comm::{Universe, f64s_to_bytes, bytes_to_f64s};
//!
//! let sums = Universe::run(4, |rank| {
//!     // Ring shift: everyone sends its id to the right neighbor.
//!     let right = (rank.rank() + 1) % rank.size();
//!     let left = (rank.rank() + rank.size() - 1) % rank.size();
//!     rank.send(right, 7, f64s_to_bytes(&[rank.rank() as f64]));
//!     let got = bytes_to_f64s(&rank.recv(left, 7));
//!     rank.allreduce_f64(got[0], eutectica_comm::ReduceOp::Sum)
//! });
//! assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3
//! ```

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use eutectica_telemetry::{Histogram, ReducedTree, TimingTreeSnapshot};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Message tag. Tags with the top bit set are reserved for collectives.
pub type Tag = u32;

/// Tag bit reserved for collectives; user tags must keep it clear. Exposed
/// so traffic accounting can separate ghost exchange from collectives.
pub const COLLECTIVE_TAG: Tag = 1 << 31;

/// Tag bit reserved for membership-protocol messages (heartbeats, epoch
/// installs, flush markers). These are the messages that *change* the
/// membership epoch, so they are never epoch-stamped themselves; their low
/// bits carry a round number instead.
pub const MEMBERSHIP_TAG: Tag = 1 << 30;

/// Bit position of the 6-bit membership-epoch stamp every user and
/// collective tag carries on the wire. Messages sent before a shrink carry
/// the old epoch's bits and are fenced out by the stale-message purge of
/// [`Rank::recover_membership`]; the stamp wraps after 64 epochs, far beyond
/// any plausible number of in-run shrinks.
const EPOCH_SHIFT: u32 = 24;

/// Mask of the epoch-stamp bits inside a wire tag.
const EPOCH_MASK: Tag = 0x3F << EPOCH_SHIFT;

/// Exclusive upper bound on user tags: bits 24 and above are reserved for
/// the epoch stamp, the membership protocol and collectives.
pub const MAX_USER_TAG: Tag = 1 << EPOCH_SHIFT;

/// Strip the epoch stamp off a wire tag, recovering the tag the application
/// passed to [`Rank::send`]. Consumers of [`CommStats::per_tag`] must apply
/// this before interpreting user tags (collective/membership bits are
/// preserved so protocol traffic stays distinguishable).
pub fn user_tag(tag: Tag) -> Tag {
    tag & !EPOCH_MASK
}

/// Base of the campaign-engine tag namespace: job-keyed result/progress
/// messages live in `[CAMPAIGN_TAG_BASE, MAX_USER_TAG)`, far above the
/// ghost-exchange tags (`4·6·n_blocks`, a few thousand at most) and the
/// migration tags just beyond them, and below the epoch stamp so campaign
/// traffic is still fenced across membership epochs like any user message.
pub const CAMPAIGN_TAG_BASE: Tag = 1 << 20;

/// Tag carrying progress/result traffic for campaign job `job`. Job keys
/// are dense indices from `CampaignSpec` expansion, so the tag doubles as
/// the routing key: a receiver posting `irecv(src, campaign_tag(k))`
/// demultiplexes per-job streams without decoding payloads — the
/// `Exchange`-partitioned routing idiom on plain point-to-point tags.
///
/// # Panics
///
/// If the key would collide with the epoch-stamp bits (`job` ≥
/// `MAX_USER_TAG - CAMPAIGN_TAG_BASE`, i.e. ≈15.7M jobs).
pub fn campaign_tag(job: u32) -> Tag {
    assert!(
        CAMPAIGN_TAG_BASE + job < MAX_USER_TAG,
        "campaign job key {job} overflows the user-tag space"
    );
    CAMPAIGN_TAG_BASE + job
}

/// Tag of the internal poison message a dying rank broadcasts to wake
/// blocked receivers immediately (never surfaced to user code).
const POISON_TAG: Tag = !0;

/// Panic payload captured from a dead rank thread.
type PanicPayload = Box<dyn std::any::Any + Send>;

#[derive(Debug)]
struct Message {
    src: usize,
    tag: Tag,
    payload: Bytes,
}

/// Handle to a posted nonblocking receive; complete it with [`Rank::wait`].
#[derive(Debug, Clone, Copy)]
#[must_use = "irecv does nothing until waited on"]
pub struct RecvRequest {
    src: usize,
    tag: Tag,
}

/// Reduction operators for [`Rank::allreduce_f64`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure of a blocking communication operation.
///
/// Returned by the `_checked` operation variants; the plain variants panic
/// with the same diagnostic. Either way no operation blocks forever: a dead
/// peer or an expired timeout surfaces within the configured
/// [`UniverseCfg::timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank this operation depends on has terminated (panicked).
    RankDead {
        /// The dead rank.
        rank: usize,
        /// The operation that observed the failure.
        op: &'static str,
    },
    /// The operation did not complete within the configured timeout.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// Source rank awaited, if the operation targets one.
        src: Option<usize>,
        /// How long the operation waited.
        waited: Duration,
    },
    /// The universe is shutting down: the mailbox was disconnected while a
    /// receive was still blocked (all peer ranks terminated).
    Shutdown {
        /// The operation that was aborted.
        op: &'static str,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankDead { rank, op } => {
                write!(f, "{op} failed: rank {rank} died")
            }
            CommError::Timeout { op, src, waited } => match src {
                Some(s) => write!(f, "{op} from rank {s} timed out after {waited:?}"),
                None => write!(f, "{op} timed out after {waited:?}"),
            },
            CommError::Shutdown { op } => {
                write!(f, "{op} aborted: universe shut down mid-operation")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Typed panic payload raised by the panicking (non-`_checked`) operation
/// variants. Carrying the [`CommError`] as a structured payload — rather
/// than a formatted string — lets a recovery driver [`catch_comm`] the
/// failure and shrink-continue instead of tearing the universe down.
#[derive(Debug, Clone)]
pub struct CommPanic {
    /// The rank whose operation failed.
    pub rank: usize,
    /// The underlying communication failure.
    pub err: CommError,
}

/// Run `f`, converting a panic raised by a panicking comm operation back
/// into its typed [`CommError`]. Panics with any other payload — including
/// injected rank kills — are propagated unchanged, so a killed rank still
/// dies even when its step loop runs under `catch_comm`.
pub fn catch_comm<R>(f: impl FnOnce() -> R) -> Result<R, CommError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<CommPanic>() {
            Ok(p) => Err(p.err),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

/// Outcome of [`Universe::run_checked`] when at least one rank died.
#[derive(Debug, Clone)]
pub struct UniverseError {
    /// `(rank, panic message)` of every dead rank, in order of death.
    pub dead: Vec<(usize, String)>,
}

impl std::fmt::Display for UniverseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rank(s) died:", self.dead.len())?;
        for (r, msg) in &self.dead {
            write!(f, " [rank {r}: {msg}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for UniverseError {}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

/// Shared record of which ranks have terminated abnormally.
#[derive(Debug)]
struct FailureState {
    any: AtomicBool,
    seq: AtomicU64,
    /// Per rank: `Some((death order, panic message))` once dead.
    dead: Mutex<Vec<Option<(u64, String)>>>,
}

impl FailureState {
    fn new(n: usize) -> Self {
        Self {
            any: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dead: Mutex::new(vec![None; n]),
        }
    }

    fn mark_dead(&self, rank: usize, msg: String) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.dead.lock()[rank] = Some((seq, msg));
        self.any.store(true, Ordering::SeqCst);
    }

    #[inline]
    fn any(&self) -> bool {
        self.any.load(Ordering::SeqCst)
    }

    /// Total deaths recorded so far (death orders are `0..deaths()`).
    #[inline]
    fn deaths(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.any() && self.dead.lock()[rank].is_some()
    }

    /// Earliest-dying rank, if any.
    fn first_dead(&self) -> Option<usize> {
        if !self.any() {
            return None;
        }
        self.dead
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, d)| d.as_ref().map(|(seq, _)| (*seq, r)))
            .min()
            .map(|(_, r)| r)
    }

    /// Earliest rank whose death order is `>= floor` — the *unfenced* deaths
    /// a membership epoch has not yet absorbed. `floor = 0` is
    /// [`FailureState::first_dead`].
    fn first_dead_since(&self, floor: u64) -> Option<usize> {
        if self.deaths() <= floor {
            return None;
        }
        self.dead
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, d)| {
                d.as_ref()
                    .filter(|(seq, _)| *seq >= floor)
                    .map(|(seq, _)| (*seq, r))
            })
            .min()
            .map(|(_, r)| r)
    }

    /// Dead ranks with death order in `[from, to)`, ordered by death.
    fn dead_in(&self, from: u64, to: u64) -> Vec<(usize, String)> {
        let mut v: Vec<(u64, usize, String)> = self
            .dead
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, d)| {
                d.as_ref()
                    .filter(|(seq, _)| *seq >= from && *seq < to)
                    .map(|(seq, msg)| (*seq, r, msg.clone()))
            })
            .collect();
        v.sort();
        v.into_iter().map(|(_, r, m)| (r, m)).collect()
    }

    /// All dead ranks with their panic messages, in order of death.
    fn dead_ranks(&self) -> Vec<(usize, String)> {
        let mut v: Vec<(u64, usize, String)> = self
            .dead
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, d)| d.as_ref().map(|(seq, msg)| (*seq, r, msg.clone())))
            .collect();
        v.sort();
        v.into_iter().map(|(_, r, m)| (r, m)).collect()
    }
}

/// Shared membership view of a universe: the current epoch, the surviving
/// rank set, and the fence — the count of deaths already absorbed by a
/// completed membership round. Installed collectively by
/// [`Rank::recover_membership`]; epoch 0 with everyone alive until then.
#[derive(Debug)]
struct MembershipState {
    epoch: AtomicU64,
    /// Deaths with order `< fenced` belong to past epochs and no longer
    /// abort collectives or fail-fast receives.
    fenced: AtomicU64,
    alive: Mutex<Vec<bool>>,
}

impl MembershipState {
    fn new(n: usize) -> Self {
        Self {
            epoch: AtomicU64::new(0),
            fenced: AtomicU64::new(0),
            alive: Mutex::new(vec![true; n]),
        }
    }

    #[inline]
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    #[inline]
    fn fenced(&self) -> u64 {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Epoch stamp bits for wire tags.
    #[inline]
    fn epoch_bits(&self) -> Tag {
        ((self.epoch() as Tag) & 0x3F) << EPOCH_SHIFT
    }

    fn is_alive(&self, rank: usize) -> bool {
        self.alive.lock()[rank]
    }

    fn alive_ranks(&self) -> Vec<usize> {
        self.alive
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(r, &a)| a.then_some(r))
            .collect()
    }

    /// Install a new epoch (idempotent: later or equal epochs win; the
    /// coordinator installs first and peers re-install harmlessly).
    fn install(&self, epoch: u64, alive_set: &[usize], fenced: u64) {
        let mut alive = self.alive.lock();
        if self.epoch.load(Ordering::SeqCst) >= epoch {
            return;
        }
        for a in alive.iter_mut() {
            *a = false;
        }
        for &r in alive_set {
            alive[r] = true;
        }
        self.fenced.store(fenced, Ordering::SeqCst);
        self.epoch.store(epoch, Ordering::SeqCst);
    }
}

/// The surviving-rank view agreed by one membership round, returned by
/// [`Rank::recover_membership`].
#[derive(Debug, Clone)]
pub struct MembershipChange {
    /// The epoch just entered (first shrink = epoch 1).
    pub epoch: u64,
    /// Surviving ranks, ascending.
    pub alive: Vec<usize>,
    /// `(rank, panic message)` of the ranks fenced by this round, in order
    /// of death.
    pub newly_dead: Vec<(usize, String)>,
}

/// Which peer deaths abort a blocked receive: a point-to-point receive only
/// depends on its source; a collective depends on every *unfenced* rank; a
/// membership round only on deaths newer than its snapshot.
#[derive(Copy, Clone, Debug)]
enum DeathScope {
    Rank(usize),
    Any,
    /// Abort only on deaths with order `>=` the given snapshot — used inside
    /// a membership round, where the triggering death is expected.
    NewSince(u64),
}

impl DeathScope {
    fn dead_rank(self, failure: &FailureState, membership: &MembershipState) -> Option<usize> {
        if !failure.any() {
            return None;
        }
        match self {
            DeathScope::Rank(r) => failure.is_dead(r).then_some(r),
            DeathScope::Any => failure.first_dead_since(membership.fenced()),
            DeathScope::NewSince(floor) => failure.first_dead_since(floor),
        }
    }
}

/// Generation barrier that notices dead ranks and timeouts instead of
/// blocking forever (replacement for `std::sync::Barrier`).
#[derive(Debug)]
struct FaultBarrier {
    /// Ranks expected per generation — the alive count after a shrink.
    expected: AtomicUsize,
    state: StdMutex<(usize, u64)>, // (arrived, generation)
    cvar: Condvar,
}

impl FaultBarrier {
    fn new(n: usize) -> Self {
        Self {
            expected: AtomicUsize::new(n),
            state: StdMutex::new((0, 0)),
            cvar: Condvar::new(),
        }
    }

    /// Reset after a membership round: zero partial arrivals (a rank may
    /// have died *inside* the barrier) and expect only the survivors. Safe
    /// because no survivor waits in the barrier while the round runs — each
    /// sent its heartbeat only after erroring out of any blocked operation.
    fn reset_for_epoch(&self, n_alive: usize) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.expected.store(n_alive, Ordering::SeqCst);
        st.0 = 0;
        st.1 += 1;
        self.cvar.notify_all();
    }

    fn wait_checked(
        &self,
        failure: &FailureState,
        membership: &MembershipState,
        timeout: Duration,
        poll: Duration,
    ) -> Result<(), CommError> {
        let fenced = membership.fenced();
        if let Some(rank) = failure.first_dead_since(fenced) {
            return Err(CommError::RankDead {
                rank,
                op: "barrier",
            });
        }
        let start = Instant::now();
        let deadline = start.checked_add(timeout);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.expected.load(Ordering::SeqCst) {
            st.0 = 0;
            st.1 += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        while st.1 == gen {
            let (guard, _) = self
                .cvar
                .wait_timeout(st, poll)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if st.1 != gen {
                break;
            }
            if let Some(rank) = failure.first_dead_since(fenced) {
                return Err(CommError::RankDead {
                    rank,
                    op: "barrier",
                });
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(CommError::Timeout {
                    op: "barrier",
                    src: None,
                    waited: start.elapsed(),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// splitmix64 — the deterministic per-message hash behind [`FaultPlan`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Uniform value in `[0, 1)` from a hash.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One message-fault rule: probabilities of dropping, duplicating,
/// corrupting (single deterministic bit flip) or delaying messages whose tag
/// matches.
#[derive(Clone, Copy, Debug)]
struct MsgRule {
    /// `None` matches every tag, collectives included.
    tag: Option<Tag>,
    drop: f64,
    duplicate: f64,
    corrupt: f64,
    delay_prob: f64,
    delay: Duration,
}

/// Application phases the fault-injection layer can target with a kill —
/// chosen to hit the protocol windows where a death is hardest to survive:
/// mid-collective, mid-migration, or inside the recovery round itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// Inside a collective field-health scan (announced by the timeloop).
    HealthScan,
    /// Inside a block-migration epoch (announced by the timeloop).
    Migration,
    /// Inside a collective gather (announced by [`Rank::gather_checked`]
    /// itself, so observable gathers are covered without instrumentation).
    Gather,
    /// Inside a membership-recovery round — the second-death-in-recovery
    /// window ([`Rank::recover_membership`] announces it on entry).
    Recovery,
}

/// Deterministic, seed-driven fault-injection plan.
///
/// Three classes of faults are supported:
///
/// * **rank kills** — [`FaultPlan::kill`] terminates a rank (by panic) when
///   the application announces the given step via [`Rank::fault_step`],
///   exercising the full failure-detection and restart path;
/// * **phase kills** — [`FaultPlan::kill_in_phase`] terminates a rank at the
///   n-th time it enters a [`FaultPhase`] (health scan, migration epoch,
///   collective gather, recovery round), exercising deaths *inside* the
///   protocols that are hardest to survive;
/// * **message faults** — per-tag probabilities of dropping, duplicating,
///   corrupting (one bit flip) or delaying each sent message.
///
/// Every per-message decision is a pure function of
/// `(seed, src, dst, tag, per-pair message index)`, so a given plan produces
/// the *same* faults on every run regardless of thread scheduling — failures
/// found in CI reproduce locally from the seed alone.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed mixed into every per-message fault decision.
    pub seed: u64,
    kills: Vec<(usize, u64)>,
    phase_kills: Vec<(usize, FaultPhase, u64)>,
    rules: Vec<MsgRule>,
}

/// Sender-side decision for one message.
#[derive(Clone, Copy, Debug, Default)]
struct MsgDecision {
    drop: bool,
    duplicate: bool,
    corrupt: bool,
    delay: Option<Duration>,
    /// Hash used to pick the flipped bit when corrupting.
    corrupt_hash: u64,
}

impl FaultPlan {
    /// New empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Kill `rank` when it announces `step` via [`Rank::fault_step`].
    pub fn kill(mut self, rank: usize, step: u64) -> Self {
        self.kills.push((rank, step));
        self
    }

    /// Kill `rank` the `occurrence`-th time (0-based) it enters `phase`
    /// (announced via [`Rank::fault_phase`]; [`FaultPhase::Gather`] and
    /// [`FaultPhase::Recovery`] are announced by the comm layer itself).
    pub fn kill_in_phase(mut self, rank: usize, phase: FaultPhase, occurrence: u64) -> Self {
        self.phase_kills.push((rank, phase, occurrence));
        self
    }

    /// Drop messages with `tag` (`None` = any tag) with probability `prob`.
    pub fn drop_messages(mut self, tag: Option<Tag>, prob: f64) -> Self {
        self.rules.push(MsgRule {
            tag,
            drop: prob,
            duplicate: 0.0,
            corrupt: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        });
        self
    }

    /// Duplicate messages with `tag` (`None` = any tag) with probability
    /// `prob`.
    pub fn duplicate_messages(mut self, tag: Option<Tag>, prob: f64) -> Self {
        self.rules.push(MsgRule {
            tag,
            drop: 0.0,
            duplicate: prob,
            corrupt: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        });
        self
    }

    /// Flip one deterministic payload bit of messages with `tag` (`None` =
    /// any tag) with probability `prob`.
    pub fn corrupt_messages(mut self, tag: Option<Tag>, prob: f64) -> Self {
        self.rules.push(MsgRule {
            tag,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: prob,
            delay_prob: 0.0,
            delay: Duration::ZERO,
        });
        self
    }

    /// Delay messages with `tag` (`None` = any tag) by `delay` with
    /// probability `prob` (sender-side, bounded).
    pub fn delay_messages(mut self, tag: Option<Tag>, prob: f64, delay: Duration) -> Self {
        self.rules.push(MsgRule {
            tag,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay_prob: prob,
            delay,
        });
        self
    }

    /// Does the plan kill `rank` at `step`?
    pub fn kills_at(&self, rank: usize, step: u64) -> bool {
        self.kills.iter().any(|&(r, s)| r == rank && s == step)
    }

    /// Does the plan kill `rank` at the given occurrence of `phase`?
    pub fn kills_in_phase(&self, rank: usize, phase: FaultPhase, occurrence: u64) -> bool {
        self.phase_kills
            .iter()
            .any(|&(r, p, o)| r == rank && p == phase && o == occurrence)
    }

    /// True if the plan contains any phase-targeted kills.
    pub fn has_phase_kills(&self) -> bool {
        !self.phase_kills.is_empty()
    }

    /// True if the plan contains any message-fault rules.
    pub fn has_message_faults(&self) -> bool {
        !self.rules.is_empty()
    }

    fn decide(&self, src: usize, dst: usize, tag: Tag, index: u64) -> MsgDecision {
        let mut d = MsgDecision::default();
        if self.rules.is_empty() {
            return d;
        }
        let base = splitmix64(
            self.seed
                ^ splitmix64((src as u64) << 42 ^ (dst as u64) << 21 ^ tag as u64)
                ^ splitmix64(index.wrapping_mul(0xd1b54a32d192ed03)),
        );
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.tag.is_some_and(|t| t != tag) {
                continue;
            }
            // Independent hash per (rule, category).
            let h = |cat: u64| splitmix64(base ^ splitmix64((i as u64) << 8 | cat));
            if rule.drop > 0.0 && u01(h(1)) < rule.drop {
                d.drop = true;
            }
            if rule.duplicate > 0.0 && u01(h(2)) < rule.duplicate {
                d.duplicate = true;
            }
            if rule.corrupt > 0.0 && u01(h(3)) < rule.corrupt {
                d.corrupt = true;
                d.corrupt_hash = h(4);
            }
            if rule.delay_prob > 0.0 && u01(h(5)) < rule.delay_prob {
                d.delay = Some(rule.delay);
            }
        }
        d
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Per-tag traffic breakdown (one entry per distinct message tag, so the
/// solver can attribute traffic to fields — φ vs µ — and faces).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages sent under this tag.
    pub messages_sent: u64,
    /// Bytes received under this tag.
    pub bytes_received: u64,
    /// Messages received under this tag.
    pub messages_received: u64,
}

/// Cumulative per-rank communication statistics (drives the Fig. 8 analysis).
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    /// Total bytes passed to `send`/`isend`.
    pub bytes_sent: u64,
    /// Number of point-to-point messages sent.
    pub messages_sent: u64,
    /// Total bytes pulled off the wire by this rank.
    pub bytes_received: u64,
    /// Number of point-to-point messages received.
    pub messages_received: u64,
    /// Wall time spent blocked inside `recv`/`wait`.
    pub recv_wait_time: Duration,
    /// Log2-bucket histogram of per-receive wait latency in nanoseconds
    /// (bucket 0 counts receives satisfied from the pending store).
    pub recv_wait_hist: Histogram,
    /// Receives aborted by failure detection (peer death, timeout, or
    /// universe shutdown) instead of completing.
    pub aborted_receives: u64,
    /// Sends whose destination rank had already terminated (the message is
    /// lost, as with MPI to a failed process).
    pub sends_to_dead: u64,
    /// Stale messages purged by a membership round: sent under a previous
    /// epoch (or by a now-dead rank) and fenced out instead of delivered.
    pub fenced_messages: u64,
    /// Traffic broken down by message tag (collective tags included; user
    /// tags carry the epoch stamp — strip with [`user_tag`]).
    pub per_tag: BTreeMap<Tag, TagStats>,
}

impl CommStats {
    /// Accumulate another rank's statistics into this one (for
    /// Universe-level totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.bytes_received += other.bytes_received;
        self.messages_received += other.messages_received;
        self.recv_wait_time += other.recv_wait_time;
        self.recv_wait_hist.merge(&other.recv_wait_hist);
        self.aborted_receives += other.aborted_receives;
        self.sends_to_dead += other.sends_to_dead;
        self.fenced_messages += other.fenced_messages;
        for (tag, t) in &other.per_tag {
            let e = self.per_tag.entry(*tag).or_default();
            e.bytes_sent += t.bytes_sent;
            e.messages_sent += t.messages_sent;
            e.bytes_received += t.bytes_received;
            e.messages_received += t.messages_received;
        }
    }
}

/// Per-rank and aggregated communication statistics for a whole
/// [`Universe::run_with_stats`] execution.
#[derive(Clone, Debug, Default)]
pub struct CommSummary {
    /// Final statistics of each rank, in rank order.
    pub per_rank: Vec<CommStats>,
    /// Element-wise sum over all ranks.
    pub total: CommStats,
}

impl CommSummary {
    /// Build the aggregate from per-rank snapshots.
    pub fn from_per_rank(per_rank: Vec<CommStats>) -> Self {
        let mut total = CommStats::default();
        for s in &per_rank {
            total.merge(s);
        }
        Self { per_rank, total }
    }

    /// Human-readable table: one line per rank plus the totals line.
    pub fn report(&self) -> String {
        let mut out = format!(
            "{:<8} {:>14} {:>10} {:>14} {:>10} {:>14}\n",
            "rank", "sent B", "sent #", "recv B", "recv #", "recv wait s"
        );
        let line = |name: &str, s: &CommStats| {
            format!(
                "{:<8} {:>14} {:>10} {:>14} {:>10} {:>14.6}\n",
                name,
                s.bytes_sent,
                s.messages_sent,
                s.bytes_received,
                s.messages_received,
                s.recv_wait_time.as_secs_f64()
            )
        };
        for (r, s) in self.per_rank.iter().enumerate() {
            out.push_str(&line(&r.to_string(), s));
        }
        out.push_str(&line("total", &self.total));
        out
    }
}

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

/// One participant of a [`Universe`]; the analog of an MPI rank.
pub struct Rank {
    rank: usize,
    size: usize,
    txs: Arc<Vec<Sender<Message>>>,
    rx: Receiver<Message>,
    /// Messages received but not yet matched by a recv, keyed by (src, tag).
    pending: RefCell<HashMap<(usize, Tag), VecDeque<Bytes>>>,
    barrier: Arc<FaultBarrier>,
    failure: Arc<FailureState>,
    membership: Arc<MembershipState>,
    timeout: Duration,
    poll: Duration,
    /// Fail point-to-point receives on *any* unfenced death, not just the
    /// awaited source — prompt entry into a membership round for every
    /// survivor (the shrink driver enables this).
    fail_fast: bool,
    faults: Option<Arc<FaultPlan>>,
    /// Per-(dst, tag) sent-message counters driving deterministic fault
    /// decisions.
    fault_counters: RefCell<HashMap<(usize, Tag), u64>>,
    /// Per-phase entry counters driving deterministic phase kills.
    phase_counters: RefCell<HashMap<FaultPhase, u64>>,
    stats: RefCell<CommStats>,
    /// Where to deposit the final stats when the rank thread finishes
    /// (set by [`Universe::run_with_stats`]).
    stats_sink: Option<Arc<Mutex<Vec<Option<CommStats>>>>>,
}

impl Drop for Rank {
    fn drop(&mut self) {
        if let Some(sink) = &self.stats_sink {
            sink.lock()[self.rank] = Some(self.stats.borrow().clone());
        }
    }
}

impl Rank {
    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The configured per-operation timeout of this universe.
    #[inline]
    pub fn op_timeout(&self) -> Duration {
        self.timeout
    }

    /// Current membership epoch (0 until the first shrink).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Surviving ranks of the current membership epoch, ascending.
    pub fn alive_ranks(&self) -> Vec<usize> {
        self.membership.alive_ranks()
    }

    /// Is `rank` alive in the current membership epoch?
    pub fn is_alive(&self, rank: usize) -> bool {
        self.membership.is_alive(rank)
    }

    /// Number of surviving ranks in the current membership epoch.
    pub fn n_alive(&self) -> usize {
        self.membership.alive_ranks().len()
    }

    /// Stamp a tag with the current epoch bits (applied to every user and
    /// collective tag on both the send and the receive side).
    #[inline]
    fn stamp(&self, tag: Tag) -> Tag {
        tag | self.membership.epoch_bits()
    }

    /// Announce the application step to the fault-injection layer: if the
    /// universe's [`FaultPlan`] kills this rank at `step`, this call panics
    /// (simulating a crash) and the universe reaps the rank.
    pub fn fault_step(&self, step: u64) {
        if let Some(plan) = &self.faults {
            if plan.kills_at(self.rank, step) {
                panic!(
                    "fault injection: rank {} killed at step {} (seed {})",
                    self.rank, step, plan.seed
                );
            }
        }
    }

    /// Announce entry into an application/protocol phase to the
    /// fault-injection layer: if the universe's [`FaultPlan`] kills this
    /// rank at this occurrence of `phase`, this call panics (simulating a
    /// crash inside the phase). Occurrences are counted per rank only while
    /// a plan with phase kills is attached, so they are deterministic.
    pub fn fault_phase(&self, phase: FaultPhase) {
        if let Some(plan) = &self.faults {
            if plan.has_phase_kills() {
                let occurrence = {
                    let mut c = self.phase_counters.borrow_mut();
                    let e = c.entry(phase).or_insert(0);
                    let v = *e;
                    *e += 1;
                    v
                };
                if plan.kills_in_phase(self.rank, phase, occurrence) {
                    panic!(
                        "fault injection: rank {} killed in phase {:?} (occurrence {}, seed {})",
                        self.rank, phase, occurrence, plan.seed
                    );
                }
            }
        }
    }

    /// Send `payload` to rank `dst` with `tag` (buffered; returns
    /// immediately, like MPI standard mode with a buffered payload). The
    /// wire tag is stamped with the current membership epoch, so stragglers'
    /// messages from before a shrink are fenced out of post-shrink receives.
    pub fn send(&self, dst: usize, tag: Tag, payload: Bytes) {
        assert!(tag < MAX_USER_TAG, "user tags must stay below 1 << 24");
        self.send_raw(dst, self.stamp(tag), payload);
    }

    fn send_raw(&self, dst: usize, tag: Tag, payload: Bytes) {
        let mut stats = self.stats.borrow_mut();
        stats.bytes_sent += payload.len() as u64;
        stats.messages_sent += 1;
        let t = stats.per_tag.entry(tag).or_default();
        t.bytes_sent += payload.len() as u64;
        t.messages_sent += 1;
        drop(stats);

        // Fault injection: per-message deterministic decision.
        let mut duplicate = false;
        let mut payload = payload;
        if let Some(plan) = &self.faults {
            if plan.has_message_faults() {
                let index = {
                    let mut c = self.fault_counters.borrow_mut();
                    let e = c.entry((dst, tag)).or_insert(0);
                    let v = *e;
                    *e += 1;
                    v
                };
                let d = plan.decide(self.rank, dst, tag, index);
                if let Some(delay) = d.delay {
                    std::thread::sleep(delay);
                }
                if d.drop {
                    return;
                }
                if d.corrupt && !payload.is_empty() {
                    let mut bytes = payload.to_vec();
                    let bit = (d.corrupt_hash % (bytes.len() as u64 * 8)) as usize;
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    payload = Bytes::from(bytes);
                }
                duplicate = d.duplicate;
            }
        }

        let n_copies = if duplicate { 2 } else { 1 };
        for _ in 0..n_copies {
            let msg = Message {
                src: self.rank,
                tag,
                payload: payload.clone(),
            };
            if self.txs[dst].send(msg).is_err() {
                // Peer already terminated: the message is lost, like an MPI
                // send to a failed process. The failure itself is surfaced
                // by the next blocking operation.
                self.stats.borrow_mut().sends_to_dead += 1;
                return;
            }
        }
    }

    /// Nonblocking send. With thread-backed buffered channels the transfer
    /// is complete on return, so no request object is needed; the name keeps
    /// the call sites structurally identical to the MPI original.
    #[inline]
    pub fn isend(&self, dst: usize, tag: Tag, payload: Bytes) {
        self.send(dst, tag, payload);
    }

    /// Post a nonblocking receive for a message from `src` with `tag`. The
    /// request matches the epoch current at post time, like the matching
    /// send.
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        assert!(tag < MAX_USER_TAG, "user tags must stay below 1 << 24");
        RecvRequest {
            src,
            tag: self.stamp(tag),
        }
    }

    /// Complete a posted receive, blocking until the message arrives.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic if the source rank dies or
    /// the timeout expires; use [`Rank::wait_checked`] to handle failures.
    pub fn wait(&self, req: RecvRequest) -> Bytes {
        self.unwrap_comm(self.wait_checked(req))
    }

    /// Complete a posted receive, returning [`CommError`] instead of
    /// blocking forever if the source rank dies or the timeout expires.
    pub fn wait_checked(&self, req: RecvRequest) -> Result<Bytes, CommError> {
        self.recv_matched(req.src, req.tag, DeathScope::Rank(req.src), "wait")
    }

    /// Blocking receive of a message from `src` with `tag`.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic if the source rank dies or
    /// the timeout expires; use [`Rank::recv_checked`] to handle failures.
    pub fn recv(&self, src: usize, tag: Tag) -> Bytes {
        assert!(tag < MAX_USER_TAG, "user tags must stay below 1 << 24");
        self.unwrap_comm(self.recv_matched(src, self.stamp(tag), DeathScope::Rank(src), "recv"))
    }

    /// Blocking receive that returns [`CommError`] instead of hanging when
    /// the source rank dies or the timeout expires.
    pub fn recv_checked(&self, src: usize, tag: Tag) -> Result<Bytes, CommError> {
        assert!(tag < MAX_USER_TAG, "user tags must stay below 1 << 24");
        self.recv_matched(src, self.stamp(tag), DeathScope::Rank(src), "recv")
    }

    fn unwrap_comm<T>(&self, r: Result<T, CommError>) -> T {
        r.unwrap_or_else(|e| {
            std::panic::panic_any(CommPanic {
                rank: self.rank,
                err: e,
            })
        })
    }

    /// Account for one message pulled off the wire (on arrival, whether it
    /// matches the current receive or goes to the pending store).
    fn note_received(&self, tag: Tag, len: usize) {
        let mut stats = self.stats.borrow_mut();
        stats.bytes_received += len as u64;
        stats.messages_received += 1;
        let t = stats.per_tag.entry(tag).or_default();
        t.bytes_received += len as u64;
        t.messages_received += 1;
    }

    /// Deliver one incoming message: true if it matches `(src, tag)`, else
    /// it is stashed in the pending store (poison wake-ups are discarded).
    fn stash_or_match(&self, msg: Message, src: usize, tag: Tag) -> Option<Bytes> {
        if msg.tag == POISON_TAG {
            return None; // wake-up only; failure state is checked by caller
        }
        self.note_received(msg.tag, msg.payload.len());
        if msg.src == src && msg.tag == tag {
            return Some(msg.payload);
        }
        self.pending
            .borrow_mut()
            .entry((msg.src, msg.tag))
            .or_default()
            .push_back(msg.payload);
        None
    }

    fn abort_receive(&self, err: CommError) -> Result<Bytes, CommError> {
        self.stats.borrow_mut().aborted_receives += 1;
        Err(err)
    }

    /// The death that should abort a receive under `scope`, widened to any
    /// unfenced death when fail-fast mode is on (point-to-point scopes
    /// only — membership rounds must tolerate the death they are fencing).
    fn aborting_death(&self, scope: DeathScope) -> Option<usize> {
        scope
            .dead_rank(&self.failure, &self.membership)
            .or_else(|| {
                if self.fail_fast && matches!(scope, DeathScope::Rank(_)) {
                    DeathScope::Any.dead_rank(&self.failure, &self.membership)
                } else {
                    None
                }
            })
    }

    /// Source-and-tag-matched receive with failure detection: completes, or
    /// returns a [`CommError`] within the configured timeout if a rank in
    /// `scope` dies, the universe shuts down, or no message arrives.
    fn recv_matched(
        &self,
        src: usize,
        tag: Tag,
        scope: DeathScope,
        op: &'static str,
    ) -> Result<Bytes, CommError> {
        // Fast path: already in the pending store — zero wait.
        if let Some(q) = self.pending.borrow_mut().get_mut(&(src, tag)) {
            if let Some(b) = q.pop_front() {
                self.stats.borrow_mut().recv_wait_hist.record(0);
                return Ok(b);
            }
        }
        let start = Instant::now();
        let deadline = start.checked_add(self.timeout);
        let finish = |b: Bytes| {
            let waited = start.elapsed();
            let mut stats = self.stats.borrow_mut();
            stats.recv_wait_time += waited;
            stats.recv_wait_hist.record(waited.as_nanos() as u64);
            Ok(b)
        };
        loop {
            // Drain everything already queued before consulting the failure
            // state, so messages sent just before a peer died are not lost.
            loop {
                match self.rx.try_recv() {
                    Ok(msg) => {
                        if let Some(b) = self.stash_or_match(msg, src, tag) {
                            return finish(b);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        return self.abort_receive(CommError::Shutdown { op });
                    }
                }
            }
            if let Some(rank) = self.aborting_death(scope) {
                return self.abort_receive(CommError::RankDead { rank, op });
            }
            let now = Instant::now();
            if deadline.is_some_and(|d| now >= d) {
                return self.abort_receive(CommError::Timeout {
                    op,
                    src: Some(src),
                    waited: now - start,
                });
            }
            let wait = match deadline {
                Some(d) => self.poll.min(d - now),
                None => self.poll,
            };
            match self.rx.recv_timeout(wait) {
                Ok(msg) => {
                    if let Some(b) = self.stash_or_match(msg, src, tag) {
                        return finish(b);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return self.abort_receive(CommError::Shutdown { op });
                }
            }
        }
    }

    /// Synchronize all ranks.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic if a rank dies or the
    /// timeout expires; use [`Rank::barrier_checked`] to handle failures.
    pub fn barrier(&self) {
        self.unwrap_comm(self.barrier_checked());
    }

    /// Synchronize all ranks, returning [`CommError`] instead of blocking
    /// forever if any rank dies or the timeout expires.
    pub fn barrier_checked(&self) -> Result<(), CommError> {
        self.barrier
            .wait_checked(&self.failure, &self.membership, self.timeout, self.poll)
    }

    /// All-reduce a single f64 over all ranks.
    ///
    /// Implemented as gather-to-0 + broadcast over point-to-point messages
    /// (log-depth trees are unnecessary at thread scale; the *semantics*
    /// match MPI_Allreduce).
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic on failure; use
    /// [`Rank::allreduce_f64_checked`] to handle failures.
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        self.unwrap_comm(self.allreduce_f64_checked(value, op))
    }

    /// Fallible [`Rank::allreduce_f64`]: returns [`CommError`] instead of
    /// hanging when any participating rank dies or the timeout expires.
    ///
    /// Membership-aware: only the surviving ranks of the current epoch
    /// participate, rooted at the lowest survivor (identical to the
    /// gather-to-0 pattern until a shrink happens).
    pub fn allreduce_f64_checked(&self, value: f64, op: ReduceOp) -> Result<f64, CommError> {
        let tag = self.stamp(COLLECTIVE_TAG | 1);
        let members = self.membership.alive_ranks();
        let root = members[0];
        if self.rank == root {
            let mut acc = value;
            for &src in members.iter().filter(|&&r| r != root) {
                let b = self.recv_matched(src, tag, DeathScope::Any, "allreduce")?;
                acc = op.apply(
                    acc,
                    f64::from_bits(u64::from_le_bytes(b[..8].try_into().unwrap())),
                );
            }
            for &dst in members.iter().filter(|&&r| r != root) {
                self.send_raw(
                    dst,
                    tag,
                    Bytes::copy_from_slice(&acc.to_bits().to_le_bytes()),
                );
            }
            Ok(acc)
        } else {
            self.send_raw(
                root,
                tag,
                Bytes::copy_from_slice(&value.to_bits().to_le_bytes()),
            );
            let b = self.recv_matched(root, tag, DeathScope::Any, "allreduce")?;
            Ok(f64::from_bits(u64::from_le_bytes(
                b[..8].try_into().unwrap(),
            )))
        }
    }

    /// Element-wise sum all-reduce of a `u64` vector over all ranks — the
    /// reduction behind the cross-rank health reports of `core::health`
    /// (violation counters per invariant class). Every rank must pass a
    /// slice of the same length; sums wrap on overflow.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic on failure; use
    /// [`Rank::allreduce_u64s_checked`] to handle failures.
    pub fn allreduce_u64s(&self, values: &[u64]) -> Vec<u64> {
        self.unwrap_comm(self.allreduce_u64s_checked(values))
    }

    /// Fallible [`Rank::allreduce_u64s`]: returns [`CommError`] instead of
    /// hanging when any participating rank dies or the timeout expires.
    pub fn allreduce_u64s_checked(&self, values: &[u64]) -> Result<Vec<u64>, CommError> {
        let tag = self.stamp(COLLECTIVE_TAG | 4);
        let encode = |vals: &[u64]| {
            let mut payload = Vec::with_capacity(vals.len() * 8);
            for v in vals {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            Bytes::from(payload)
        };
        let members = self.membership.alive_ranks();
        let root = members[0];
        if self.rank == root {
            let mut acc = values.to_vec();
            for &src in members.iter().filter(|&&r| r != root) {
                let b = self.recv_matched(src, tag, DeathScope::Any, "allreduce_u64s")?;
                assert_eq!(
                    b.len(),
                    acc.len() * 8,
                    "allreduce_u64s length mismatch from rank {src}"
                );
                for (a, chunk) in acc.iter_mut().zip(b.chunks_exact(8)) {
                    *a = a.wrapping_add(u64::from_le_bytes(chunk.try_into().unwrap()));
                }
            }
            let payload = encode(&acc);
            for &dst in members.iter().filter(|&&r| r != root) {
                self.send_raw(dst, tag, payload.clone());
            }
            Ok(acc)
        } else {
            self.send_raw(root, tag, encode(values));
            let b = self.recv_matched(root, tag, DeathScope::Any, "allreduce_u64s")?;
            assert_eq!(b.len(), values.len() * 8, "allreduce_u64s length mismatch");
            Ok(b.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
    }

    /// Gather byte payloads on `root`; returns `Some(per-rank payloads)` on
    /// the root, `None` elsewhere.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic on failure; use
    /// [`Rank::gather_checked`] to handle failures.
    pub fn gather(&self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        self.unwrap_comm(self.gather_checked(root, payload))
    }

    /// Fallible [`Rank::gather`]: returns [`CommError`] instead of hanging
    /// when any participating rank dies or the timeout expires.
    ///
    /// Membership-aware: only survivors participate, and a dead requested
    /// root is remapped to the lowest survivor so root-pinned protocols
    /// (manifest election, rebalance planning) keep working after a shrink.
    /// The returned vector is still indexed by *original* rank id; dead
    /// ranks' slots are empty.
    pub fn gather_checked(
        &self,
        root: usize,
        payload: Bytes,
    ) -> Result<Option<Vec<Bytes>>, CommError> {
        self.fault_phase(FaultPhase::Gather);
        let tag = self.stamp(COLLECTIVE_TAG | 2);
        let members = self.membership.alive_ranks();
        let root = if members.contains(&root) {
            root
        } else {
            members[0]
        };
        if self.rank == root {
            let mut out = vec![Bytes::new(); self.size];
            out[root] = payload;
            for &src in members.iter().filter(|&&r| r != root) {
                out[src] = self.recv_matched(src, tag, DeathScope::Any, "gather")?;
            }
            Ok(Some(out))
        } else {
            self.send_raw(root, tag, payload);
            Ok(None)
        }
    }

    /// Broadcast `payload` (significant on `root`) to all ranks.
    ///
    /// # Panics
    /// Panics with the [`CommError`] diagnostic on failure; use
    /// [`Rank::broadcast_checked`] to handle failures.
    pub fn broadcast(&self, root: usize, payload: Bytes) -> Bytes {
        self.unwrap_comm(self.broadcast_checked(root, payload))
    }

    /// Fallible [`Rank::broadcast`]: returns [`CommError`] instead of
    /// hanging when the root dies or the timeout expires.
    ///
    /// Membership-aware: a dead requested root is remapped to the lowest
    /// survivor (see [`Rank::gather_checked`]).
    pub fn broadcast_checked(&self, root: usize, payload: Bytes) -> Result<Bytes, CommError> {
        let tag = self.stamp(COLLECTIVE_TAG | 3);
        let members = self.membership.alive_ranks();
        let root = if members.contains(&root) {
            root
        } else {
            members[0]
        };
        if self.rank == root {
            for &dst in members.iter().filter(|&&r| r != root) {
                self.send_raw(dst, tag, payload.clone());
            }
            Ok(payload)
        } else {
            self.recv_matched(root, tag, DeathScope::Any, "broadcast")
        }
    }

    /// Snapshot of this rank's communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats.borrow().clone()
    }

    /// Reset the statistics counters (e.g. after warmup timesteps).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = CommStats::default();
    }

    /// Reduce a telemetry timing tree across all ranks (min/avg/max per
    /// node, the waLBerla reduced-timing-pool pattern). Collective: every
    /// rank must call it. Returns `Some` on rank 0, `None` elsewhere.
    pub fn reduce_timing(&self, snap: &TimingTreeSnapshot) -> Option<ReducedTree> {
        eutectica_telemetry::reduce_with(snap, |payload| {
            self.gather(0, Bytes::from(payload))
                .map(|bufs| bufs.iter().map(|b| b.to_vec()).collect())
        })
    }

    /// Collective membership round: after one or more peer deaths, the
    /// survivors agree on the new surviving-rank set, bump the epoch, fence
    /// the observed deaths, and purge stale pre-shrink messages. Returns
    /// `Ok(None)` when there is nothing to recover from (all deaths already
    /// fenced — e.g. a retry after a round that completed).
    ///
    /// Protocol (all on reserved `MEMBERSHIP_TAG` wire tags, which are
    /// *not* epoch-stamped):
    ///
    /// 1. Every survivor snapshots the death count and derives the same
    ///    candidate set = previous alive minus currently dead; the lowest
    ///    candidate coordinates.
    /// 2. Non-coordinators send a heartbeat keyed by the snapshot and wait
    ///    for the coordinator's install-ack carrying the new epoch + alive
    ///    set. The coordinator collects heartbeats from every candidate,
    ///    installs the epoch, resets the barrier for the shrunken count,
    ///    and acks.
    /// 3. All survivors exchange flush markers keyed by the *new* epoch.
    ///    The per-rank mailbox is a single FIFO, so once every flush marker
    ///    has arrived, every stale pre-shrink message has too — the pending
    ///    store is then purged of dead-source and stale-epoch entries
    ///    (counted in [`CommStats::fenced_messages`]).
    ///
    /// Every blocking wait inside the round uses a [`DeathScope`] floored at
    /// the snapshot: the deaths being fenced are expected, but a *new* death
    /// during recovery surfaces as a typed [`CommError::RankDead`], never a
    /// hang. The snapshot-keyed heartbeat tags make driver-level retries
    /// converge — a retry re-snapshots a higher death count and the round
    /// restarts on fresh tags, while stale heartbeats stay parked in
    /// pending (bounded by the number of recoveries).
    pub fn recover_membership(&self) -> Result<Option<MembershipChange>, CommError> {
        self.fault_phase(FaultPhase::Recovery);
        let fenced = self.membership.fenced();
        let snapshot = self.failure.deaths();
        if snapshot == fenced {
            return Ok(None);
        }
        let candidates: Vec<usize> = self
            .membership
            .alive_ranks()
            .into_iter()
            .filter(|&r| !self.failure.is_dead(r))
            .collect();
        debug_assert!(candidates.contains(&self.rank));
        let coordinator = candidates[0];
        let scope = DeathScope::NewSince(snapshot);
        let round = ((snapshot as Tag) & 0xFFFF) << 8;
        let hb_tag = MEMBERSHIP_TAG | round | 1;
        let ack_tag = MEMBERSHIP_TAG | round | 2;

        let (new_epoch, alive) = if self.rank == coordinator {
            for &src in candidates.iter().filter(|&&r| r != coordinator) {
                let b = self.recv_matched(src, hb_tag, scope, "membership heartbeat")?;
                let peer_snapshot = u64::from_le_bytes(b[..8].try_into().unwrap());
                if peer_snapshot != snapshot {
                    // A death raced the round: escalate typed, the driver
                    // retries with the higher snapshot.
                    let rank = self.failure.first_dead_since(snapshot).unwrap_or(src);
                    return Err(CommError::RankDead {
                        rank,
                        op: "membership heartbeat",
                    });
                }
            }
            let new_epoch = self.membership.epoch() + 1;
            self.membership.install(new_epoch, &candidates, snapshot);
            self.barrier.reset_for_epoch(candidates.len());
            let mut payload = Vec::with_capacity(8 + 8 * candidates.len());
            payload.extend_from_slice(&new_epoch.to_le_bytes());
            for &r in &candidates {
                payload.extend_from_slice(&(r as u64).to_le_bytes());
            }
            let payload = Bytes::from(payload);
            for &dst in candidates.iter().filter(|&&r| r != coordinator) {
                self.send_raw(dst, ack_tag, payload.clone());
            }
            (new_epoch, candidates)
        } else {
            self.send_raw(
                coordinator,
                hb_tag,
                Bytes::copy_from_slice(&snapshot.to_le_bytes()),
            );
            let b = self.recv_matched(coordinator, ack_tag, scope, "membership ack")?;
            let new_epoch = u64::from_le_bytes(b[..8].try_into().unwrap());
            let alive: Vec<usize> = b[8..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
                .collect();
            self.membership.install(new_epoch, &alive, snapshot);
            (new_epoch, alive)
        };

        // Flush round on the new epoch's key: FIFO ordering guarantees every
        // stale message precedes these markers, so after the round the
        // pending store holds everything there is to purge.
        let flush_tag = MEMBERSHIP_TAG | (((new_epoch as Tag) & 0xFFFF) << 8) | 3;
        for &dst in alive.iter().filter(|&&r| r != self.rank) {
            self.send_raw(dst, flush_tag, Bytes::new());
        }
        for &src in alive.iter().filter(|&&r| r != self.rank) {
            self.recv_matched(src, flush_tag, scope, "membership flush")?;
        }

        let epoch_bits = self.membership.epoch_bits();
        let mut purged = 0u64;
        self.pending.borrow_mut().retain(|(src, tag), q| {
            // Keep in-flight membership traffic (retries must still match)
            // and current-epoch messages from survivors — fast peers may
            // already have sent post-shrink traffic before our purge runs.
            let keep = (tag & MEMBERSHIP_TAG != 0 && tag & COLLECTIVE_TAG == 0)
                || (self.membership.is_alive(*src) && (tag & EPOCH_MASK) == epoch_bits);
            if !keep {
                purged += q.len() as u64;
            }
            keep
        });
        self.stats.borrow_mut().fenced_messages += purged;

        Ok(Some(MembershipChange {
            epoch: new_epoch,
            alive,
            newly_dead: self.failure.dead_in(fenced, snapshot),
        }))
    }
}

// ---------------------------------------------------------------------------
// Universe
// ---------------------------------------------------------------------------

/// Execution parameters of a [`Universe`]: failure-detection timeouts and an
/// optional fault-injection plan.
#[derive(Clone, Debug)]
pub struct UniverseCfg {
    /// Upper bound on any single blocking communication operation. Blocking
    /// calls fail with [`CommError::Timeout`] instead of waiting longer.
    pub timeout: Duration,
    /// Poll interval at which blocked operations re-check the failure
    /// state; bounds the detection latency of a peer death.
    pub poll: Duration,
    /// Deterministic fault-injection plan, if any.
    pub faults: Option<FaultPlan>,
    /// Abort point-to-point receives on *any* unfenced death instead of only
    /// the awaited source, so every survivor promptly reaches the membership
    /// round of a shrink-and-continue driver. Off by default: without a
    /// recovery driver, a death unrelated to the awaited source should not
    /// fail an otherwise satisfiable receive.
    pub fail_fast_on_death: bool,
}

impl Default for UniverseCfg {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(300),
            poll: Duration::from_millis(2),
            faults: None,
            fail_fast_on_death: false,
        }
    }
}

impl UniverseCfg {
    /// Config with a custom operation timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            timeout,
            ..Self::default()
        }
    }

    /// Attach a fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable fail-fast receives (see [`UniverseCfg::fail_fast_on_death`]).
    pub fn with_fail_fast(mut self) -> Self {
        self.fail_fast_on_death = true;
        self
    }
}

/// A set of ranks executing the same function — the analog of
/// `mpirun -np N`.
pub struct Universe;

/// Per-rank results of a [`Universe::run_surviving`] execution: `results[r]`
/// is `Some` iff rank `r` returned normally; `dead` lists the ranks that
/// panicked (injected kill or otherwise) with their messages, in order of
/// death.
#[derive(Debug)]
pub struct SurvivalOutcome<T> {
    /// Per-rank return values; `None` for ranks that died.
    pub results: Vec<Option<T>>,
    /// `(rank, panic message)` of every dead rank, in order of death.
    pub dead: Vec<(usize, String)>,
}

/// Everything `run_inner` learns about one execution.
struct RunOutcome<T> {
    results: Vec<Option<T>>,
    /// `(rank, seq, message, panic payload)` of dead ranks.
    dead: Vec<(usize, String)>,
    payloads: Vec<Option<PanicPayload>>,
    first_dead: Option<usize>,
}

impl Universe {
    /// Spawn `n` ranks running `f` and collect their return values in rank
    /// order. Panics in any rank propagate (the earliest-dying rank's
    /// payload is re-raised); surviving ranks observe the death as
    /// [`CommError`]s instead of deadlocking.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        Self::finish_infallible(Self::run_inner(n, f, None, UniverseCfg::default()))
    }

    /// Like [`Universe::run`], but additionally collects every rank's final
    /// [`CommStats`] into an aggregated [`CommSummary`].
    pub fn run_with_stats<T, F>(n: usize, f: F) -> (Vec<T>, CommSummary)
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        let sink: Arc<Mutex<Vec<Option<CommStats>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let out = Self::finish_infallible(Self::run_inner(
            n,
            f,
            Some(Arc::clone(&sink)),
            UniverseCfg::default(),
        ));
        let per_rank = Arc::try_unwrap(sink)
            .unwrap_or_else(|_| panic!("stats sink still shared"))
            .into_inner()
            .into_iter()
            .map(|s| s.expect("rank deposited no stats"))
            .collect();
        (out, CommSummary::from_per_rank(per_rank))
    }

    /// Run `n` ranks under `cfg` (timeouts + optional fault plan) and
    /// *report* failures instead of panicking: if any rank dies — by its own
    /// panic or an injected kill — the returned [`UniverseError`] names every
    /// dead rank with its panic message, in order of death. Surviving ranks
    /// are unwound via [`CommError`]s; nothing deadlocks.
    pub fn run_checked<T, F>(n: usize, cfg: UniverseCfg, f: F) -> Result<Vec<T>, UniverseError>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        let out = Self::run_inner(n, f, None, cfg);
        if out.dead.is_empty() {
            Ok(out
                .results
                .into_iter()
                .map(|o| o.expect("rank produced no result"))
                .collect())
        } else {
            Err(UniverseError { dead: out.dead })
        }
    }

    /// Like [`Universe::run_checked`], but deaths do not discard the
    /// survivors' work: every rank's return value (or `None` if it died) is
    /// reported alongside the dead set, so a shrink-and-continue driver can
    /// decide success from the survivors' outputs. Non-injected panics with
    /// non-[`CommError`] payloads still poison the whole universe through
    /// the failure state, but their *survivors'* results remain available.
    pub fn run_surviving<T, F>(n: usize, cfg: UniverseCfg, f: F) -> SurvivalOutcome<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        let out = Self::run_inner(n, f, None, cfg);
        SurvivalOutcome {
            results: out.results,
            dead: out.dead,
        }
    }

    fn finish_infallible<T>(out: RunOutcome<T>) -> Vec<T> {
        if let Some(first) = out.first_dead {
            let mut payloads = out.payloads;
            if let Some(p) = payloads[first].take() {
                std::panic::resume_unwind(p);
            }
            panic!("rank {first} died: {}", out.dead[0].1);
        }
        out.results
            .into_iter()
            .map(|o| o.expect("rank produced no result"))
            .collect()
    }

    fn run_inner<T, F>(
        n: usize,
        f: F,
        stats_sink: Option<Arc<Mutex<Vec<Option<CommStats>>>>>,
        cfg: UniverseCfg,
    ) -> RunOutcome<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        assert!(n > 0, "need at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        let barrier = Arc::new(FaultBarrier::new(n));
        let failure = Arc::new(FailureState::new(n));
        let membership = Arc::new(MembershipState::new(n));
        let faults = cfg.faults.map(Arc::new);
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let payloads: Arc<Mutex<Vec<Option<PanicPayload>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        let mut handles = Vec::with_capacity(n);
        for (rank_id, rx) in rxs.into_iter().enumerate() {
            let rank = Rank {
                rank: rank_id,
                size: n,
                txs: Arc::clone(&txs),
                rx,
                pending: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                failure: Arc::clone(&failure),
                membership: Arc::clone(&membership),
                timeout: cfg.timeout,
                poll: cfg.poll,
                fail_fast: cfg.fail_fast_on_death,
                faults: faults.clone(),
                fault_counters: RefCell::new(HashMap::new()),
                phase_counters: RefCell::new(HashMap::new()),
                stats: RefCell::new(CommStats::default()),
                stats_sink: stats_sink.clone(),
            };
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let payloads = Arc::clone(&payloads);
            let failure = Arc::clone(&failure);
            let txs = Arc::clone(&txs);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank_id}"))
                    .stack_size(8 << 20)
                    .spawn(move || {
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(rank)));
                        match out {
                            Ok(v) => results.lock()[rank_id] = Some(v),
                            Err(payload) => {
                                // Reap: record the death, then poison every
                                // mailbox so blocked receivers wake at once
                                // instead of waiting out a poll interval.
                                failure.mark_dead(rank_id, panic_message(payload.as_ref()));
                                payloads.lock()[rank_id] = Some(payload);
                                for tx in txs.iter() {
                                    let _ = tx.send(Message {
                                        src: rank_id,
                                        tag: POISON_TAG,
                                        payload: Bytes::new(),
                                    });
                                }
                            }
                        }
                    })
                    .expect("spawn rank thread"),
            );
        }
        for h in handles {
            // Rank panics are caught inside the thread; a join error would
            // mean the reporting harness itself failed.
            h.join().expect("rank thread infrastructure panicked");
        }
        let dead = failure.dead_ranks();
        let first_dead = failure.first_dead();
        RunOutcome {
            results: Arc::try_unwrap(results)
                .unwrap_or_else(|_| panic!("results still shared"))
                .into_inner(),
            dead,
            payloads: Arc::try_unwrap(payloads)
                .unwrap_or_else(|_| panic!("payloads still shared"))
                .into_inner(),
            first_dead,
        }
    }
}

/// Best-effort string form of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<CommPanic>() {
        format!("rank {}: {}", p.rank, p.err)
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Cartesian process-grid helper (the analog of `MPI_Cart_create`): maps a
/// rank onto coordinates of a `[px, py, pz]` grid and resolves face
/// neighbors with optional periodic wrap — the topology the halo exchange
/// of the block decomposition runs on.
#[derive(Copy, Clone, Debug)]
pub struct CartComm {
    /// Ranks per axis.
    pub dims: [usize; 3],
    /// Periodicity per axis.
    pub periodic: [bool; 3],
}

impl CartComm {
    /// Create a Cartesian layout; `dims` must multiply to the rank count it
    /// is used with.
    pub fn new(dims: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "empty Cartesian grid");
        Self { dims, periodic }
    }

    /// Total ranks of the grid.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of `rank` (x fastest).
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        assert!(rank < self.size());
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank of `coords`.
    pub fn rank_of(&self, coords: [usize; 3]) -> usize {
        for a in 0..3 {
            assert!(coords[a] < self.dims[a]);
        }
        (coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0]
    }

    /// Neighbor of `rank` one step along `axis` in direction `dir` (±1);
    /// `None` at a non-periodic boundary.
    pub fn neighbor(&self, rank: usize, axis: usize, dir: i32) -> Option<usize> {
        assert!(axis < 3 && (dir == 1 || dir == -1));
        let mut c = self.coords(rank);
        let n = self.dims[axis] as i64;
        let next = c[axis] as i64 + dir as i64;
        if next < 0 || next >= n {
            if self.periodic[axis] {
                c[axis] = ((next + n) % n) as usize;
            } else {
                return None;
            }
        } else {
            c[axis] = next as usize;
        }
        Some(self.rank_of(c))
    }
}

/// Serialize a f64 slice into a byte payload (little-endian).
pub fn f64s_to_bytes(vals: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deserialize a byte payload back into f64s.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn bytes_to_f64s(b: &Bytes) -> Vec<f64> {
    assert!(b.len() % 8 == 0, "payload not f64-aligned");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Deserialize a byte payload into an existing buffer (allocation-free path
/// used by the ghost-layer exchange every timestep).
pub fn bytes_to_f64s_into(b: &Bytes, out: &mut Vec<f64>) {
    assert!(b.len() % 8 == 0, "payload not f64-aligned");
    out.clear();
    out.extend(
        b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_tags_stay_inside_the_user_space() {
        assert!(campaign_tag(0) >= CAMPAIGN_TAG_BASE);
        assert!(campaign_tag(1_000_000) < MAX_USER_TAG);
        // Epoch stamping round-trips a campaign tag like any user tag.
        assert_eq!(user_tag(campaign_tag(7)), campaign_tag(7));
        // Campaign traffic routes by key over plain point-to-point sends.
        let got = Universe::run(2, |r| {
            if r.rank() == 1 {
                for job in [3u32, 1, 2] {
                    r.send(0, campaign_tag(job), f64s_to_bytes(&[job as f64]));
                }
                0.0
            } else {
                // Receive in key order regardless of send order.
                (1u32..=3)
                    .map(|job| bytes_to_f64s(&r.recv(1, campaign_tag(job)))[0])
                    .sum()
            }
        });
        assert_eq!(got[0], 6.0);
    }

    #[test]
    #[should_panic(expected = "overflows the user-tag space")]
    fn campaign_tag_overflow_panics() {
        let _ = campaign_tag(MAX_USER_TAG - CAMPAIGN_TAG_BASE);
    }

    #[test]
    fn ring_exchange() {
        let got = Universe::run(5, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            r.send(right, 1, f64s_to_bytes(&[r.rank() as f64 * 2.0]));
            bytes_to_f64s(&r.recv(left, 1))[0]
        });
        assert_eq!(got, vec![8.0, 0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn out_of_order_matching_by_tag() {
        // Rank 0 sends two messages with different tags; rank 1 receives
        // them in the opposite order.
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 10, f64s_to_bytes(&[1.0]));
                r.send(1, 20, f64s_to_bytes(&[2.0]));
                0.0
            } else {
                let b = bytes_to_f64s(&r.recv(0, 20))[0];
                let a = bytes_to_f64s(&r.recv(0, 10))[0];
                10.0 * a + b
            }
        });
        assert_eq!(got[1], 12.0);
    }

    #[test]
    fn fifo_within_same_src_tag() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                for i in 0..10 {
                    r.send(1, 5, f64s_to_bytes(&[i as f64]));
                }
                vec![]
            } else {
                (0..10).map(|_| bytes_to_f64s(&r.recv(0, 5))[0]).collect()
            }
        });
        assert_eq!(got[1], (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn self_send_works() {
        let got = Universe::run(1, |r| {
            r.send(0, 3, f64s_to_bytes(&[42.0]));
            bytes_to_f64s(&r.recv(0, 3))[0]
        });
        assert_eq!(got, vec![42.0]);
    }

    #[test]
    fn irecv_wait_overlap_pattern() {
        // The Algorithm-2 pattern: post receives, send, compute, then wait.
        let got = Universe::run(3, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            let req = r.irecv(left, 9);
            r.isend(right, 9, f64s_to_bytes(&[r.rank() as f64]));
            let local = 100.0 * r.rank() as f64; // "compute"
            let remote = bytes_to_f64s(&r.wait(req))[0];
            local + remote
        });
        assert_eq!(got, vec![2.0, 100.0, 201.0]);
    }

    #[test]
    fn allreduce_ops() {
        for (op, expect) in [
            (ReduceOp::Sum, 0.0 + 1.0 + 2.0 + 3.0),
            (ReduceOp::Min, 0.0),
            (ReduceOp::Max, 3.0),
        ] {
            let got = Universe::run(4, move |r| r.allreduce_f64(r.rank() as f64, op));
            assert_eq!(got, vec![expect; 4], "{op:?}");
        }
    }

    #[test]
    fn allreduce_u64s_sums_elementwise() {
        let got = Universe::run(4, |r| {
            let v = [r.rank() as u64, 10 * r.rank() as u64, 1];
            r.allreduce_u64s(&v)
        });
        assert_eq!(got, vec![vec![6, 60, 4]; 4]);
        // Empty vectors are a valid degenerate reduction.
        let got = Universe::run(3, |r| r.allreduce_u64s(&[]));
        assert_eq!(got, vec![Vec::<u64>::new(); 3]);
    }

    #[test]
    fn gather_and_broadcast() {
        let got = Universe::run(4, |r| {
            let gathered = r.gather(2, f64s_to_bytes(&[r.rank() as f64]));
            if r.rank() == 2 {
                let v: Vec<f64> = gathered
                    .unwrap()
                    .iter()
                    .map(|b| bytes_to_f64s(b)[0])
                    .collect();
                assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
            } else {
                assert!(gathered.is_none());
            }
            let b = r.broadcast(1, f64s_to_bytes(&[7.5 * (r.rank() == 1) as u8 as f64]));
            bytes_to_f64s(&b)[0]
        });
        assert_eq!(got, vec![7.5; 4]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE1: AtomicUsize = AtomicUsize::new(0);
        let got = Universe::run(4, |r| {
            PHASE1.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            PHASE1.load(Ordering::SeqCst)
        });
        assert_eq!(got, vec![4; 4]);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, f64s_to_bytes(&[1.0, 2.0, 3.0]));
                r.send(1, 2, f64s_to_bytes(&[4.0]));
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 2);
            }
            r.barrier();
            let s = r.stats();
            (
                s.bytes_sent,
                s.messages_sent,
                s.bytes_received,
                s.messages_received,
            )
        });
        assert_eq!(got[0], (32, 2, 0, 0));
        assert_eq!(got[1], (0, 0, 32, 2));
    }

    #[test]
    fn per_tag_breakdown_tracks_both_directions() {
        let got = Universe::run(2, |r| {
            if r.rank() == 0 {
                r.send(1, 1, f64s_to_bytes(&[1.0, 2.0, 3.0]));
                r.send(1, 2, f64s_to_bytes(&[4.0]));
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 2);
            }
            r.barrier();
            r.stats()
        });
        assert_eq!(got[0].per_tag[&1].bytes_sent, 24);
        assert_eq!(got[0].per_tag[&2].bytes_sent, 8);
        assert_eq!(got[0].per_tag[&1].bytes_received, 0);
        assert_eq!(got[1].per_tag[&1].bytes_received, 24);
        assert_eq!(got[1].per_tag[&2].messages_received, 1);
        // Every receive left a latency observation.
        assert_eq!(got[1].recv_wait_hist.count(), 2);
    }

    #[test]
    fn universe_summary_aggregates_ranks() {
        let (_, summary) = Universe::run_with_stats(3, |r| {
            let right = (r.rank() + 1) % r.size();
            let left = (r.rank() + r.size() - 1) % r.size();
            r.send(right, 4, f64s_to_bytes(&[0.0; 4]));
            let _ = r.recv(left, 4);
        });
        assert_eq!(summary.per_rank.len(), 3);
        assert_eq!(summary.total.bytes_sent, 3 * 32);
        assert_eq!(summary.total.bytes_received, 3 * 32);
        assert_eq!(summary.total.messages_sent, 3);
        assert_eq!(summary.total.messages_received, 3);
        assert_eq!(summary.total.per_tag[&4].bytes_sent, 96);
        let rep = summary.report();
        assert!(rep.contains("total"));
        assert!(rep.lines().count() >= 5, "{rep}");
    }

    #[test]
    fn timing_tree_reduces_across_ranks() {
        use eutectica_telemetry::Telemetry;
        let got = Universe::run(4, |r| {
            let tel = Telemetry::new(r.rank());
            {
                let _step = tel.span("step");
                let _inner = tel.span_cat("exchange", "comm");
            }
            let red = r.reduce_timing(&tel.tree_snapshot());
            assert_eq!(red.is_some(), r.rank() == 0);
            red.map(|t| {
                (
                    t.n_ranks,
                    t.rows
                        .iter()
                        .map(|row| row.path.clone())
                        .collect::<Vec<_>>(),
                )
            })
        });
        let (n, paths) = got[0].clone().unwrap();
        assert_eq!(n, 4);
        assert_eq!(paths, ["step", "step/exchange"]);
    }

    #[test]
    fn cart_comm_coordinates_and_neighbors() {
        let c = CartComm::new([4, 3, 2], [true, false, true]);
        assert_eq!(c.size(), 24);
        for r in 0..24 {
            assert_eq!(c.rank_of(c.coords(r)), r);
        }
        // Periodic x wraps.
        assert_eq!(c.neighbor(0, 0, -1), Some(3));
        assert_eq!(c.neighbor(3, 0, 1), Some(0));
        // Open y stops at the boundary.
        assert_eq!(c.neighbor(0, 1, -1), None);
        assert_eq!(c.neighbor(c.rank_of([0, 2, 0]), 1, 1), None);
        assert_eq!(c.neighbor(0, 1, 1), Some(4));
        // Periodic z wraps across the slowest axis.
        assert_eq!(c.neighbor(0, 2, -1), Some(12));
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let vals = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        let b = f64s_to_bytes(&vals);
        assert_eq!(bytes_to_f64s(&b), vals);
        let mut out = Vec::new();
        bytes_to_f64s_into(&b, &mut out);
        assert_eq!(out, vals);
    }

    // ----- fault tolerance -----

    #[test]
    fn fault_plan_decisions_are_deterministic() {
        let plan = FaultPlan::new(42)
            .drop_messages(Some(7), 0.5)
            .duplicate_messages(None, 0.3)
            .corrupt_messages(Some(9), 0.2);
        for _ in 0..3 {
            let a: Vec<_> = (0..64)
                .map(|i| {
                    let d = plan.decide(0, 1, 7, i);
                    (d.drop, d.duplicate, d.corrupt)
                })
                .collect();
            let b: Vec<_> = (0..64)
                .map(|i| {
                    let d = plan.decide(0, 1, 7, i);
                    (d.drop, d.duplicate, d.corrupt)
                })
                .collect();
            assert_eq!(a, b);
        }
        // Roughly the configured rates over many samples.
        let drops = (0..10_000)
            .filter(|&i| plan.decide(0, 1, 7, i).drop)
            .count();
        assert!((3_500..6_500).contains(&drops), "drop rate off: {drops}");
    }

    #[test]
    fn dead_rank_is_detected_not_deadlocked() {
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10));
        let err = Universe::run_checked(3, cfg, |r| {
            if r.rank() == 1 {
                panic!("injected death");
            }
            // Ranks 0 and 2 wait on rank 1 — must error, not hang.
            r.recv_checked(1, 5).map(|_| ()).unwrap_err()
        })
        .unwrap_err();
        assert_eq!(err.dead.len(), 1);
        assert_eq!(err.dead[0].0, 1);
        assert!(err.dead[0].1.contains("injected death"));
    }

    #[test]
    fn recv_times_out_with_error() {
        let cfg = UniverseCfg::with_timeout(Duration::from_millis(50));
        let got = Universe::run_checked(2, cfg, |r| {
            if r.rank() == 0 {
                // Never sends.
                Ok(())
            } else {
                r.recv_checked(0, 3).map(|_| ())
            }
        })
        .unwrap();
        match &got[1] {
            Err(CommError::Timeout { op, src, .. }) => {
                assert_eq!(*op, "recv");
                assert_eq!(*src, Some(0));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn barrier_detects_dead_rank() {
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10));
        let err = Universe::run_checked(3, cfg, |r| {
            if r.rank() == 2 {
                panic!("dies before barrier");
            }
            r.barrier_checked()
        })
        .unwrap_err();
        assert_eq!(err.dead[0].0, 2);
    }

    #[test]
    fn aborted_receives_are_counted() {
        let cfg = UniverseCfg::with_timeout(Duration::from_millis(40));
        let got = Universe::run_checked(2, cfg, |r| {
            if r.rank() == 1 {
                let _ = r.recv_checked(0, 1);
                r.stats().aborted_receives
            } else {
                0
            }
        })
        .unwrap();
        assert_eq!(got[1], 1);
    }

    #[test]
    fn injected_kill_fires_at_step() {
        let plan = FaultPlan::new(1).kill(1, 3);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(5)).with_faults(plan);
        let err = Universe::run_checked(2, cfg, |r| {
            for step in 0..10u64 {
                r.fault_step(step);
                let _ = r.barrier_checked();
            }
        })
        .unwrap_err();
        assert_eq!(err.dead[0].0, 1);
        assert!(
            err.dead[0].1.contains("killed at step 3"),
            "{}",
            err.dead[0].1
        );
    }

    #[test]
    fn message_send_after_peer_death_is_lost_not_fatal() {
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(5));
        let got = Universe::run_checked(2, cfg, |r| {
            if r.rank() == 0 {
                panic!("gone");
            }
            // Wait until rank 0 is reaped, then send into the void.
            while r.recv_checked(0, 1).is_ok() {}
            r.send(0, 2, f64s_to_bytes(&[1.0]));
            r.stats().sends_to_dead
        })
        .unwrap_err();
        assert_eq!(got.dead[0].0, 0);
    }

    /// Drive [`Rank::recover_membership`] to completion, retrying typed
    /// second-death errors like a shrink driver would.
    fn recover(r: &Rank) -> MembershipChange {
        for _ in 0..16 {
            match r.recover_membership() {
                Ok(Some(change)) => return change,
                Ok(None) => panic!("recover called with nothing to fence"),
                Err(CommError::RankDead { .. }) => continue,
                Err(e) => panic!("membership round failed: {e}"),
            }
        }
        panic!("membership round did not converge");
    }

    #[test]
    fn shrink_recovery_installs_epoch_and_survivors_continue() {
        let plan = FaultPlan::new(9).kill(2, 1);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10)).with_faults(plan);
        let out = Universe::run_surviving(3, cfg, |r| {
            for step in 0..4u64 {
                r.fault_step(step);
                if catch_comm(|| r.allreduce_f64(1.0, ReduceOp::Sum)).is_err() {
                    let change = recover(&r);
                    assert_eq!(change.epoch, 1);
                    assert_eq!(change.alive, vec![0, 1]);
                    assert_eq!(change.newly_dead.len(), 1);
                    assert_eq!(change.newly_dead[0].0, 2);
                }
            }
            // Post-shrink point-to-point (epoch-stamped tags) + collective.
            let peer = 1 - r.rank();
            r.send(peer, 11, f64s_to_bytes(&[r.rank() as f64]));
            let got = bytes_to_f64s(&r.recv(peer, 11))[0];
            (r.epoch(), r.allreduce_f64(got, ReduceOp::Sum))
        });
        assert_eq!(out.dead.len(), 1);
        assert_eq!(out.dead[0].0, 2);
        for rank in [0, 1] {
            let (epoch, sum) = out.results[rank].expect("survivor result");
            assert_eq!(epoch, 1);
            assert_eq!(sum, 1.0); // 0 + 1 over the survivors
        }
        assert!(out.results[2].is_none());
    }

    #[test]
    fn second_death_inside_recovery_is_typed_and_retry_converges() {
        // Rank 3 dies at step 1; rank 2 dies the moment it enters the
        // membership round. Survivors must see a typed error (never a hang)
        // and converge on retry.
        let plan = FaultPlan::new(4)
            .kill(3, 1)
            .kill_in_phase(2, FaultPhase::Recovery, 0);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10)).with_faults(plan);
        let out = Universe::run_surviving(4, cfg, |r| {
            for step in 0..3u64 {
                r.fault_step(step);
                if catch_comm(|| r.barrier()).is_err() {
                    recover(&r);
                }
            }
            (r.epoch(), r.alive_ranks())
        });
        let dead: Vec<usize> = out.dead.iter().map(|d| d.0).collect();
        assert_eq!(dead.len(), 2);
        assert!(dead.contains(&2) && dead.contains(&3));
        for rank in [0, 1] {
            let (epoch, alive) = out.results[rank].clone().expect("survivor result");
            assert_eq!(epoch, 1);
            assert_eq!(alive, vec![0, 1]);
        }
    }

    #[test]
    fn post_shrink_collectives_remap_dead_root() {
        let plan = FaultPlan::new(3).kill(0, 1);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10)).with_faults(plan);
        let out = Universe::run_surviving(3, cfg, |r| {
            for step in 0..2u64 {
                r.fault_step(step);
                if catch_comm(|| r.barrier()).is_err() {
                    recover(&r);
                }
            }
            // Requested root 0 is dead: the lowest survivor takes over, so
            // root-pinned protocols keep working after the shrink.
            let gathered = r.gather(0, f64s_to_bytes(&[r.rank() as f64]));
            let bc = bytes_to_f64s(&r.broadcast(0, f64s_to_bytes(&[r.rank() as f64 * 10.0])))[0];
            (gathered.map(|g| bytes_to_f64s(&g[2])[0]), bc)
        });
        assert_eq!(out.dead[0].0, 0);
        let (g1, bc1) = out.results[1].expect("rank 1 result");
        let (g2, bc2) = out.results[2].expect("rank 2 result");
        assert_eq!(g1, Some(2.0), "rank 1 acts as gather root");
        assert_eq!(g2, None);
        assert_eq!(bc1, 10.0, "rank 1's payload is broadcast");
        assert_eq!(bc2, 10.0);
    }

    #[test]
    fn stale_pre_shrink_messages_are_fenced() {
        let plan = FaultPlan::new(5).kill(2, 1);
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(10)).with_faults(plan);
        let out = Universe::run_surviving(3, cfg, |r| {
            if r.rank() == 0 {
                // Epoch-0 message that is never received before the shrink.
                r.send(1, 5, f64s_to_bytes(&[1.0]));
            }
            for step in 0..2u64 {
                r.fault_step(step);
                if catch_comm(|| r.barrier()).is_err() {
                    recover(&r);
                }
            }
            if r.rank() == 0 {
                r.send(1, 5, f64s_to_bytes(&[99.0]));
                0.0
            } else {
                // The epoch-1 receive must match only the post-shrink send;
                // the stale epoch-0 message was purged by the flush round.
                let v = bytes_to_f64s(&r.recv(0, 5))[0];
                assert!(
                    r.stats().fenced_messages >= 1,
                    "stale pre-shrink message was not fenced"
                );
                v
            }
        });
        assert_eq!(out.dead[0].0, 2);
        assert_eq!(out.results[1], Some(99.0));
    }

    #[test]
    fn fail_fast_aborts_receives_unrelated_to_the_dead_rank() {
        // Without fail-fast, a receive from a live-but-silent source waits
        // out the full timeout even though a third rank died; the shrink
        // driver needs every survivor at the membership round promptly.
        let cfg = UniverseCfg::with_timeout(Duration::from_secs(30)).with_fail_fast();
        let out = Universe::run_surviving(3, cfg, |r| {
            if r.rank() == 2 {
                panic!("boom");
            }
            let start = Instant::now();
            let err = r.recv_checked(1 - r.rank(), 1).unwrap_err();
            assert!(
                matches!(err, CommError::RankDead { rank: 2, .. }),
                "expected typed death, got {err}"
            );
            start.elapsed() < Duration::from_secs(10)
        });
        assert_eq!(out.results[0], Some(true));
        assert_eq!(out.results[1], Some(true));
    }
}
