//! Property-based tests of the mesh pipeline.

use eutectica_blockgrid::field::SoaField;
use eutectica_blockgrid::GridDims;
use eutectica_mesh::extract::extract_isosurface;
use eutectica_mesh::simplify::{simplify, SimplifyOptions};
use eutectica_mesh::TriMesh;
use proptest::prelude::*;

/// Random smooth-ish field: a sum of a few sinusoids.
fn wavy_field(dims: GridDims, freqs: &[(f64, f64, f64)]) -> SoaField<1> {
    let g = dims.ghost as f64;
    let mut f = SoaField::<1>::new(dims, [0.0]);
    for z in 0..dims.tz() {
        for y in 0..dims.ty() {
            for x in 0..dims.tx() {
                let (px, py, pz) = (x as f64 - g, y as f64 - g, z as f64 - g);
                let mut v = 0.5;
                for &(a, b, c) in freqs {
                    v += 0.2 * (a * px + b * py + c * pz).sin();
                }
                f.set(0, x, y, z, v);
            }
        }
    }
    f
}

fn arb_freqs() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.05..0.9f64, 0.05..0.9f64, 0.05..0.9f64), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extraction of any smooth field yields a mesh whose open edges lie
    /// only on the domain boundary (no interior cracks: marching tetrahedra
    /// has no ambiguous cases), with all-finite vertices inside the domain.
    #[test]
    fn extraction_has_no_interior_cracks(freqs in arb_freqs()) {
        let dims = GridDims::cube(12);
        let f = wavy_field(dims, &freqs);
        let mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        let (lo, hi) = if mesh.num_vertices() > 0 {
            mesh.bounding_box()
        } else {
            ([0.0; 3], [0.0; 3])
        };
        prop_assert!(lo.iter().all(|&v| v >= -1.0e-9));
        prop_assert!(hi.iter().all(|&v| v <= 12.0 + 1e-9));
        // Every open (boundary) edge must touch the domain boundary box.
        let mut edges = std::collections::HashMap::new();
        for t in &mesh.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                *edges.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        for ((a, b), count) in edges {
            if count == 1 {
                for v in [a, b] {
                    let p = mesh.vertices[v as usize];
                    let on_bnd = p.iter().any(|&c| !(1e-9..=12.0 - 1e-9).contains(&c));
                    prop_assert!(on_bnd, "interior open edge at {p:?}");
                }
            } else {
                prop_assert!(count == 2, "edge shared by {count} triangles");
            }
        }
    }

    /// Welding is idempotent and never increases counts.
    #[test]
    fn weld_is_idempotent(freqs in arb_freqs()) {
        let dims = GridDims::cube(10);
        let f = wavy_field(dims, &freqs);
        let mut mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        let (v1, t1) = (mesh.num_vertices(), mesh.num_triangles());
        mesh.weld(1e-9);
        prop_assert!(mesh.num_vertices() <= v1 && mesh.num_triangles() <= t1);
        let (v2, t2) = (mesh.num_vertices(), mesh.num_triangles());
        mesh.weld(1e-9);
        prop_assert_eq!((v2, t2), (mesh.num_vertices(), mesh.num_triangles()));
    }

    /// Serialization round-trips exactly.
    #[test]
    fn bytes_roundtrip(freqs in arb_freqs()) {
        let dims = GridDims::cube(8);
        let f = wavy_field(dims, &freqs);
        let mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        let back = TriMesh::from_bytes(&mesh.to_bytes());
        prop_assert_eq!(mesh.vertices, back.vertices);
        prop_assert_eq!(mesh.triangles, back.triangles);
    }

    /// Simplification never breaks closed surfaces and never increases the
    /// triangle count; the enclosed volume stays within the error budget.
    #[test]
    fn simplify_preserves_topology(freqs in arb_freqs(), target_frac in 0.2..0.9f64) {
        let dims = GridDims::cube(12);
        let f = wavy_field(dims, &freqs);
        let mut mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        if mesh.num_triangles() == 0 {
            return Ok(());
        }
        let before = mesh.num_triangles();
        let open_before = mesh.open_edge_count();
        simplify(
            &mut mesh,
            SimplifyOptions {
                target_triangles: (before as f64 * target_frac) as usize,
                max_error: 1e-3,
                protect_open_boundary: true,
            },
            |_| false,
        );
        prop_assert!(mesh.num_triangles() <= before);
        prop_assert!(mesh.open_edge_count() <= open_before, "new cracks appeared");
    }
}
