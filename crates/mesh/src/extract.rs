//! Per-block isosurface extraction (marching tetrahedra).
//!
//! Each cell-center cube is split into the six Kuhn tetrahedra sharing the
//! main diagonal; this decomposition uses the *same* face diagonal on the
//! shared face of two adjacent cubes, so the triangulation is consistent
//! across cube — and block — boundaries. Because ghost layers replicate the
//! neighbor block's cells exactly, vertices generated on a block border are
//! bitwise identical in both blocks and the local meshes weld into one
//! watertight surface ("the local meshes can be stitched together to a
//! single mesh describing the complete domain", Sec. 3.2).
//!
//! Triangles are wound so normals point out of the `φ ≥ iso` region.

use crate::{cross, dot, sub, TriMesh};
use eutectica_blockgrid::GridDims;

/// The six Kuhn tetrahedra of a unit cube, as corner ids (bit 0 = +x,
/// bit 1 = +y, bit 2 = +z). All share the 0–7 main diagonal.
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
];

/// Extract the `iso`-surface of one SoA component of a ghost-layered field.
///
/// `comp` is the component slice (length `dims.volume()`), `origin` the
/// global coordinates of the first *interior* cell center. Cubes anchored at
/// every interior cell are triangulated (the +side cube uses ghost values,
/// so each interface cube is owned by exactly one block).
pub fn extract_isosurface(comp: &[f64], dims: GridDims, origin: [f64; 3], iso: f64) -> TriMesh {
    assert_eq!(comp.len(), dims.volume());
    let g = dims.ghost;
    let mut mesh = TriMesh::new();
    let corner_off = |c: usize| -> (usize, usize, usize) { (c & 1, (c >> 1) & 1, (c >> 2) & 1) };

    for z in g..g + dims.nz {
        for y in g..g + dims.ny {
            for x in g..g + dims.nx {
                // Cube corner values and global positions.
                let mut vals = [0.0f64; 8];
                let mut pos = [[0.0f64; 3]; 8];
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for c in 0..8 {
                    let (ox, oy, oz) = corner_off(c);
                    vals[c] = comp[dims.idx(x + ox, y + oy, z + oz)];
                    lo = lo.min(vals[c]);
                    hi = hi.max(vals[c]);
                    pos[c] = [
                        origin[0] + (x + ox - g) as f64,
                        origin[1] + (y + oy - g) as f64,
                        origin[2] + (z + oz - g) as f64,
                    ];
                }
                if hi < iso || lo >= iso {
                    continue; // cube entirely inside or outside
                }
                for tet in TETS {
                    emit_tet(
                        &mut mesh,
                        [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                        [vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]]],
                        iso,
                    );
                }
            }
        }
    }
    mesh.weld(1e-9);
    mesh
}

/// Interpolate the iso-crossing on edge a-b.
#[inline]
fn cut(pa: [f64; 3], pb: [f64; 3], va: f64, vb: f64, iso: f64) -> [f64; 3] {
    let t = (iso - va) / (vb - va);
    let t = t.clamp(0.0, 1.0);
    [
        pa[0] + t * (pb[0] - pa[0]),
        pa[1] + t * (pb[1] - pa[1]),
        pa[2] + t * (pb[2] - pa[2]),
    ]
}

/// Push a triangle oriented so its normal points away from `inside_ref`.
fn push_oriented(mesh: &mut TriMesh, tri: [[f64; 3]; 3], inside_ref: [f64; 3]) {
    let n = cross(sub(tri[1], tri[0]), sub(tri[2], tri[0]));
    let centroid = [
        (tri[0][0] + tri[1][0] + tri[2][0]) / 3.0,
        (tri[0][1] + tri[1][1] + tri[2][1]) / 3.0,
        (tri[0][2] + tri[1][2] + tri[2][2]) / 3.0,
    ];
    let outward = sub(centroid, inside_ref);
    let base = mesh.vertices.len() as u32;
    if dot(n, outward) >= 0.0 {
        mesh.vertices.extend_from_slice(&tri);
        mesh.triangles.push([base, base + 1, base + 2]);
    } else {
        mesh.vertices.extend_from_slice(&[tri[0], tri[2], tri[1]]);
        mesh.triangles.push([base, base + 1, base + 2]);
    }
}

/// Triangulate one tetrahedron.
fn emit_tet(mesh: &mut TriMesh, p: [[f64; 3]; 4], v: [f64; 4], iso: f64) {
    let inside: Vec<usize> = (0..4).filter(|&i| v[i] >= iso).collect();
    let outside: Vec<usize> = (0..4).filter(|&i| v[i] < iso).collect();
    match inside.len() {
        0 | 4 => {}
        1 => {
            let i = inside[0];
            let q: Vec<[f64; 3]> = outside
                .iter()
                .map(|&o| cut(p[i], p[o], v[i], v[o], iso))
                .collect();
            push_oriented(mesh, [q[0], q[1], q[2]], p[i]);
        }
        3 => {
            let o = outside[0];
            let q: Vec<[f64; 3]> = inside
                .iter()
                .map(|&i| cut(p[i], p[o], v[i], v[o], iso))
                .collect();
            // Inside reference: centroid of the inside face.
            let r = [
                (p[inside[0]][0] + p[inside[1]][0] + p[inside[2]][0]) / 3.0,
                (p[inside[0]][1] + p[inside[1]][1] + p[inside[2]][1]) / 3.0,
                (p[inside[0]][2] + p[inside[1]][2] + p[inside[2]][2]) / 3.0,
            ];
            push_oriented(mesh, [q[0], q[1], q[2]], r);
        }
        2 => {
            // Quad: cuts of the four inside-outside edges.
            let (i0, i1) = (inside[0], inside[1]);
            let (o0, o1) = (outside[0], outside[1]);
            let q00 = cut(p[i0], p[o0], v[i0], v[o0], iso);
            let q01 = cut(p[i0], p[o1], v[i0], v[o1], iso);
            let q10 = cut(p[i1], p[o0], v[i1], v[o0], iso);
            let q11 = cut(p[i1], p[o1], v[i1], v[o1], iso);
            let r = [
                0.5 * (p[i0][0] + p[i1][0]),
                0.5 * (p[i0][1] + p[i1][1]),
                0.5 * (p[i0][2] + p[i1][2]),
            ];
            // Split the quad q00-q01-q11-q10 along q00-q11.
            push_oriented(mesh, [q00, q01, q11], r);
            push_oriented(mesh, [q00, q11, q10], r);
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eutectica_blockgrid::field::SoaField;

    /// A sphere level-set sampled on cell centers.
    fn sphere_field(n: usize, center: [f64; 3], radius: f64) -> (SoaField<1>, GridDims) {
        let dims = GridDims::cube(n);
        let g = dims.ghost;
        let mut f = SoaField::<1>::new(dims, [0.0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let p = [
                        x as f64 - g as f64,
                        y as f64 - g as f64,
                        z as f64 - g as f64,
                    ];
                    let d = (0..3)
                        .map(|i| (p[i] - center[i]).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    // Smooth indicator: 1 inside, 0 outside.
                    f.set(0, x, y, z, 0.5 - 0.5 * ((d - radius) / 1.5).tanh());
                }
            }
        }
        (f, dims)
    }

    #[test]
    fn sphere_surface_is_watertight_with_correct_measures() {
        let r = 8.0;
        let (f, dims) = sphere_field(24, [12.0, 12.0, 12.0], r);
        let mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        assert!(mesh.num_triangles() > 500);
        assert_eq!(mesh.open_edge_count(), 0, "sphere mesh not watertight");
        assert_eq!(mesh.euler_characteristic(), 2, "not sphere-topology");
        let area = mesh.area();
        let expect = 4.0 * std::f64::consts::PI * r * r;
        assert!(
            (area - expect).abs() / expect < 0.08,
            "area {area} vs {expect}"
        );
        let vol = mesh.signed_volume().abs();
        let expect_v = 4.0 / 3.0 * std::f64::consts::PI * r.powi(3);
        assert!(
            (vol - expect_v).abs() / expect_v < 0.08,
            "volume {vol} vs {expect_v}"
        );
    }

    #[test]
    fn orientation_points_outward() {
        let (f, dims) = sphere_field(16, [8.0, 8.0, 8.0], 5.0);
        let mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        // Outward orientation ⇒ positive signed volume.
        assert!(mesh.signed_volume() > 0.0);
    }

    #[test]
    fn split_blocks_stitch_to_single_watertight_surface() {
        // One 24³ sphere vs two 12-cell-thick slabs extracted separately
        // (with correct ghost values) and stitched by welding.
        let r = 7.0;
        let (full_f, full_d) = sphere_field(24, [12.0, 12.0, 12.0], r);
        let full = extract_isosurface(full_f.comp(0), full_d, [0.0; 3], 0.5);

        let mut stitched = TriMesh::new();
        for half in 0..2 {
            let dims = GridDims::new(24, 24, 12, 1);
            let mut f = SoaField::<1>::new(dims, [0.0]);
            let z_off = half * 12;
            for z in 0..dims.tz() {
                for y in 0..dims.ty() {
                    for x in 0..dims.tx() {
                        // Global cell = local + offset (ghost-aware).
                        let p = [x as f64 - 1.0, y as f64 - 1.0, (z + z_off) as f64 - 1.0];
                        let d =
                            ((p[0] - 12.0).powi(2) + (p[1] - 12.0).powi(2) + (p[2] - 12.0).powi(2))
                                .sqrt();
                        f.set(0, x, y, z, 0.5 - 0.5 * ((d - r) / 1.5).tanh());
                    }
                }
            }
            let m = extract_isosurface(f.comp(0), dims, [0.0, 0.0, z_off as f64], 0.5);
            stitched.append(&m);
        }
        stitched.weld(1e-9);
        assert_eq!(stitched.open_edge_count(), 0, "stitched mesh has cracks");
        assert!(
            (stitched.area() - full.area()).abs() < 1e-9,
            "stitched area {} vs full {}",
            stitched.area(),
            full.area()
        );
        assert_eq!(stitched.num_triangles(), full.num_triangles());
    }

    #[test]
    fn empty_and_full_fields_give_no_surface() {
        let dims = GridDims::cube(8);
        let f0 = SoaField::<1>::new(dims, [0.0]);
        let f1 = SoaField::<1>::new(dims, [1.0]);
        assert_eq!(
            extract_isosurface(f0.comp(0), dims, [0.0; 3], 0.5).num_triangles(),
            0
        );
        assert_eq!(
            extract_isosurface(f1.comp(0), dims, [0.0; 3], 0.5).num_triangles(),
            0
        );
    }

    #[test]
    fn planar_interface_has_expected_area() {
        // φ = 1 below z = 7.5, 0 above: the surface is a plane of area n².
        let dims = GridDims::cube(16);
        let mut f = SoaField::<1>::new(dims, [0.0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    f.set(0, x, y, z, if z <= 8 { 1.0 } else { 0.0 });
                }
            }
        }
        let mesh = extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5);
        // The plane spans the 15-cube-wide interior (cut cubes only).
        let expect = 16.0 * 16.0;
        let area = mesh.area();
        assert!(
            (area - expect).abs() / expect < 0.15,
            "area {area} vs {expect}"
        );
        // All triangle centroids sit at z = 7.5.
        for t in &mesh.triangles {
            let zc = (mesh.vertices[t[0] as usize][2]
                + mesh.vertices[t[1] as usize][2]
                + mesh.vertices[t[2] as usize][2])
                / 3.0;
            assert!((zc - 7.5).abs() < 1e-9);
        }
    }
}
