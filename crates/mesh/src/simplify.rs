//! Quadric-error-metric mesh simplification (Garland & Heckbert).
//!
//! "For mesh coarsening, we use the quadric-error edge-collapse-based
//! simplification algorithm [12]" (Sec. 3.2). Each vertex accumulates the
//! fundamental error quadrics of its incident triangle planes; edges are
//! collapsed greedily in order of the quadric error of their optimal
//! contraction point. The paper's stitching trick is supported: "assigning a
//! high weight to all vertices that are located on block boundaries, the
//! boundaries are preserved such that the later stitching step can work
//! correctly" — protected vertices never move.

use crate::{cross, dot, normalize, sub, TriMesh};
use std::collections::{BinaryHeap, HashSet};

/// Symmetric 4×4 quadric, upper triangle
/// `[a00,a01,a02,a03, a11,a12,a13, a22,a23, a33]`.
#[derive(Copy, Clone, Debug, Default)]
struct Quadric([f64; 10]);

impl Quadric {
    fn from_plane(n: [f64; 3], d: f64) -> Self {
        let p = [n[0], n[1], n[2], d];
        let mut q = [0.0; 10];
        let mut k = 0;
        for i in 0..4 {
            for j in i..4 {
                q[k] = p[i] * p[j];
                k += 1;
            }
        }
        Quadric(q)
    }

    fn add(&mut self, o: &Quadric) {
        for (a, b) in self.0.iter_mut().zip(o.0.iter()) {
            *a += b;
        }
    }

    /// vᵀ Q v with v = (x, y, z, 1).
    fn error(&self, v: [f64; 3]) -> f64 {
        let q = &self.0;
        let p = [v[0], v[1], v[2], 1.0];
        let mut full = [[0.0; 4]; 4];
        let mut k = 0;
        for i in 0..4 {
            for j in i..4 {
                full[i][j] = q[k];
                full[j][i] = q[k];
                k += 1;
            }
        }
        let mut s = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                s += p[i] * full[i][j] * p[j];
            }
        }
        s.max(0.0)
    }

    /// Optimal contraction position: solve ∇(vᵀQv) = 0 (3×3 system); `None`
    /// if (nearly) singular.
    fn optimal_point(&self) -> Option<[f64; 3]> {
        let q = &self.0;
        // A = upper-left 3×3, b = -q[0..3][3].
        let a = [[q[0], q[1], q[2]], [q[1], q[4], q[5]], [q[2], q[5], q[7]]];
        let b = [-q[3], -q[6], -q[8]];
        let det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        if det.abs() < 1e-10 {
            return None;
        }
        let inv_det = 1.0 / det;
        let solve_col = |col: usize| -> f64 {
            let mut m = a;
            for row in 0..3 {
                m[row][col] = b[row];
            }
            (m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]))
                * inv_det
        };
        Some([solve_col(0), solve_col(1), solve_col(2)])
    }
}

#[derive(PartialEq)]
struct Candidate {
    cost: f64,
    a: u32,
    b: u32,
    target: [f64; 3],
    stamp: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simplification options.
#[derive(Clone, Copy, Debug)]
pub struct SimplifyOptions {
    /// Stop when at most this many triangles remain.
    pub target_triangles: usize,
    /// Never perform collapses whose quadric error exceeds this.
    pub max_error: f64,
    /// Protect vertices on open (boundary) edges — required for meshes that
    /// will later be stitched to neighbors.
    pub protect_open_boundary: bool,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        Self {
            target_triangles: 0,
            max_error: 1e-2,
            protect_open_boundary: true,
        }
    }
}

/// Simplify `mesh` in place by QEM edge collapse; returns the number of
/// collapses performed. Vertices for which `protect` returns true (plus, by
/// default, open-boundary vertices) are never moved or removed.
pub fn simplify(
    mesh: &mut TriMesh,
    opts: SimplifyOptions,
    protect: impl Fn(&[f64; 3]) -> bool,
) -> usize {
    let nv = mesh.vertices.len();
    if nv == 0 || mesh.triangles.is_empty() {
        return 0;
    }

    // Adjacency and quadrics.
    let mut tris: Vec<Option<[u32; 3]>> = mesh.triangles.iter().map(|t| Some(*t)).collect();
    let mut v_tris: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for (ti, t) in mesh.triangles.iter().enumerate() {
        for &v in t {
            v_tris[v as usize].push(ti as u32);
        }
    }
    let mut quadrics = vec![Quadric::default(); nv];
    for t in &mesh.triangles {
        let [a, b, c] = [
            mesh.vertices[t[0] as usize],
            mesh.vertices[t[1] as usize],
            mesh.vertices[t[2] as usize],
        ];
        let n = normalize(cross(sub(b, a), sub(c, a)));
        if n == [0.0; 3] {
            continue;
        }
        let d = -dot(n, a);
        let q = Quadric::from_plane(n, d);
        for &v in t {
            quadrics[v as usize].add(&q);
        }
    }

    // Protected vertices: user predicate + open-boundary vertices.
    let mut protected = vec![false; nv];
    for (i, v) in mesh.vertices.iter().enumerate() {
        if protect(v) {
            protected[i] = true;
        }
    }
    if opts.protect_open_boundary {
        let mut edge_count: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for t in &mesh.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                *edge_count.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        for ((a, b), c) in edge_count {
            if c != 2 {
                protected[a as usize] = true;
                protected[b as usize] = true;
            }
        }
    }

    // Union-find style vertex forwarding.
    let mut remap: Vec<u32> = (0..nv as u32).collect();
    fn resolve(remap: &mut [u32], mut v: u32) -> u32 {
        while remap[v as usize] != v {
            let p = remap[remap[v as usize] as usize];
            remap[v as usize] = p;
            v = p;
        }
        v
    }

    let mut stamps = vec![0u64; nv];
    let mut heap = BinaryHeap::new();
    let push_edge = |heap: &mut BinaryHeap<Candidate>,
                     quadrics: &[Quadric],
                     stamps: &[u64],
                     vertices: &[[f64; 3]],
                     protected: &[bool],
                     a: u32,
                     b: u32| {
        if a == b || protected[a as usize] || protected[b as usize] {
            return;
        }
        let mut q = quadrics[a as usize];
        q.add(&quadrics[b as usize]);
        let (pa, pb) = (vertices[a as usize], vertices[b as usize]);
        let mid = [
            0.5 * (pa[0] + pb[0]),
            0.5 * (pa[1] + pb[1]),
            0.5 * (pa[2] + pb[2]),
        ];
        let mut best = mid;
        let mut best_err = q.error(mid);
        for cand in [q.optimal_point().unwrap_or(mid), pa, pb] {
            let e = q.error(cand);
            if e < best_err {
                best_err = e;
                best = cand;
            }
        }
        heap.push(Candidate {
            cost: best_err,
            a,
            b,
            target: best,
            stamp: stamps[a as usize] + stamps[b as usize],
        });
    };

    // Seed the heap with all edges.
    {
        let mut seen = HashSet::new();
        for t in &mesh.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                if seen.insert(key) {
                    push_edge(
                        &mut heap,
                        &quadrics,
                        &stamps,
                        &mesh.vertices,
                        &protected,
                        key.0,
                        key.1,
                    );
                }
            }
        }
    }

    let mut live_tris = mesh.triangles.len();
    let mut collapses = 0;
    while live_tris > opts.target_triangles {
        let Some(c) = heap.pop() else { break };
        if c.cost > opts.max_error {
            break;
        }
        let a = resolve(&mut remap, c.a);
        let b = resolve(&mut remap, c.b);
        if a == b || c.stamp != stamps[a as usize] + stamps[b as usize] {
            continue; // stale candidate
        }
        if protected[a as usize] || protected[b as usize] {
            continue;
        }
        // Link condition (manifold preservation): the vertices adjacent to
        // both a and b must be exactly the third vertices of the triangles
        // containing edge (a, b); otherwise the collapse would pinch the
        // surface into a non-manifold fin and open spurious boundary edges.
        {
            let mut shared_thirds = HashSet::new();
            let mut nbrs_a = HashSet::new();
            let mut nbrs_b = HashSet::new();
            for (&vsrc, set) in [(&a, &mut nbrs_a), (&b, &mut nbrs_b)] {
                for &ti in &v_tris[vsrc as usize] {
                    if let Some(t) = tris[ti as usize] {
                        let rt = t.map(|v| resolve(&mut remap, v));
                        for v in rt {
                            if v != a && v != b {
                                set.insert(v);
                            }
                        }
                        if rt.contains(&a) && rt.contains(&b) {
                            for v in rt {
                                if v != a && v != b {
                                    shared_thirds.insert(v);
                                }
                            }
                        }
                    }
                }
            }
            let common: HashSet<u32> = nbrs_a.intersection(&nbrs_b).copied().collect();
            if common != shared_thirds {
                continue;
            }
        }

        // Check that no surviving triangle flips when b merges into a at
        // the target position.
        let mut flips = false;
        for &ti in v_tris[a as usize].iter().chain(v_tris[b as usize].iter()) {
            let Some(t) = tris[ti as usize] else { continue };
            let rt = t.map(|v| resolve(&mut remap, v));
            if rt.contains(&a) && rt.contains(&b) {
                continue; // will degenerate and be removed
            }
            let old_p: [[f64; 3]; 3] = rt.map(|v| mesh.vertices[v as usize]);
            let new_p: [[f64; 3]; 3] = rt.map(|v| {
                if v == a || v == b {
                    c.target
                } else {
                    mesh.vertices[v as usize]
                }
            });
            let n_old = cross(sub(old_p[1], old_p[0]), sub(old_p[2], old_p[0]));
            let n_new = cross(sub(new_p[1], new_p[0]), sub(new_p[2], new_p[0]));
            if dot(n_old, n_new) <= 0.0 {
                flips = true;
                break;
            }
        }
        if flips {
            continue;
        }

        // Perform the collapse: b -> a.
        mesh.vertices[a as usize] = c.target;
        let qb = quadrics[b as usize];
        quadrics[a as usize].add(&qb);
        remap[b as usize] = a;
        stamps[a as usize] += 1;
        stamps[b as usize] += 1;

        // Rewrite triangles of b, drop degenerates.
        let b_tris = std::mem::take(&mut v_tris[b as usize]);
        for ti in b_tris {
            if let Some(t) = tris[ti as usize] {
                let rt = t.map(|v| resolve(&mut remap, v));
                if rt[0] == rt[1] || rt[1] == rt[2] || rt[0] == rt[2] {
                    tris[ti as usize] = None;
                    live_tris -= 1;
                } else {
                    tris[ti as usize] = Some(rt);
                    v_tris[a as usize].push(ti);
                }
            }
        }
        // Also resolve and prune a's own list.
        let a_tris = std::mem::take(&mut v_tris[a as usize]);
        for ti in a_tris {
            if let Some(t) = tris[ti as usize] {
                let rt = t.map(|v| resolve(&mut remap, v));
                if rt[0] == rt[1] || rt[1] == rt[2] || rt[0] == rt[2] {
                    tris[ti as usize] = None;
                    live_tris -= 1;
                } else {
                    tris[ti as usize] = Some(rt);
                    v_tris[a as usize].push(ti);
                }
            }
        }
        collapses += 1;

        // Refresh candidate edges around a.
        let mut nbrs = HashSet::new();
        for &ti in &v_tris[a as usize] {
            if let Some(t) = tris[ti as usize] {
                for v in t {
                    let rv = resolve(&mut remap, v);
                    if rv != a {
                        nbrs.insert(rv);
                    }
                }
            }
        }
        for n in nbrs {
            push_edge(
                &mut heap,
                &quadrics,
                &stamps,
                &mesh.vertices,
                &protected,
                a,
                n,
            );
        }
    }

    // Compact the mesh.
    let mut used = vec![false; nv];
    let mut out_tris = Vec::with_capacity(live_tris);
    for t in tris.into_iter().flatten() {
        let rt = t.map(|v| resolve(&mut remap, v));
        if rt[0] != rt[1] && rt[1] != rt[2] && rt[0] != rt[2] {
            for v in rt {
                used[v as usize] = true;
            }
            out_tris.push(rt);
        }
    }
    let mut new_id = vec![u32::MAX; nv];
    let mut verts = Vec::new();
    for (i, &u) in used.iter().enumerate() {
        if u {
            new_id[i] = verts.len() as u32;
            verts.push(mesh.vertices[i]);
        }
    }
    mesh.vertices = verts;
    mesh.triangles = out_tris
        .into_iter()
        .map(|t| t.map(|v| new_id[v as usize]))
        .collect();
    collapses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_isosurface;
    use eutectica_blockgrid::field::SoaField;
    use eutectica_blockgrid::GridDims;

    fn sphere_mesh(n: usize, r: f64) -> TriMesh {
        let dims = GridDims::cube(n);
        let g = dims.ghost;
        let c = n as f64 / 2.0;
        let mut f = SoaField::<1>::new(dims, [0.0]);
        for z in 0..dims.tz() {
            for y in 0..dims.ty() {
                for x in 0..dims.tx() {
                    let d = ((x as f64 - g as f64 - c).powi(2)
                        + (y as f64 - g as f64 - c).powi(2)
                        + (z as f64 - g as f64 - c).powi(2))
                    .sqrt();
                    f.set(0, x, y, z, 0.5 - 0.5 * ((d - r) / 1.5).tanh());
                }
            }
        }
        extract_isosurface(f.comp(0), dims, [0.0; 3], 0.5)
    }

    #[test]
    fn simplification_reduces_triangles_and_preserves_shape() {
        let mut m = sphere_mesh(24, 8.0);
        let before_tris = m.num_triangles();
        let before_vol = m.signed_volume();
        let n = simplify(
            &mut m,
            SimplifyOptions {
                target_triangles: before_tris / 4,
                max_error: 1.0,
                protect_open_boundary: true,
            },
            |_| false,
        );
        assert!(n > 0, "no collapses performed");
        assert!(
            m.num_triangles() <= before_tris / 3,
            "only reduced {before_tris} -> {}",
            m.num_triangles()
        );
        assert_eq!(m.open_edge_count(), 0, "simplification broke the surface");
        let vol = m.signed_volume();
        assert!(
            (vol - before_vol).abs() / before_vol < 0.1,
            "volume drifted: {before_vol} -> {vol}"
        );
    }

    #[test]
    fn error_threshold_limits_aggressiveness() {
        let mut m = sphere_mesh(20, 6.0);
        let before = m.num_triangles();
        simplify(
            &mut m,
            SimplifyOptions {
                target_triangles: 0,
                max_error: 1e-12, // essentially only exactly-coplanar collapses
                protect_open_boundary: true,
            },
            |_| false,
        );
        // A curved surface has almost no zero-error collapses.
        assert!(
            m.num_triangles() as f64 > before as f64 * 0.5,
            "over-simplified: {before} -> {}",
            m.num_triangles()
        );
    }

    #[test]
    fn protected_vertices_survive() {
        let mut m = sphere_mesh(20, 6.0);
        // Protect the x < 10 hemisphere.
        let protected_before: Vec<[f64; 3]> =
            m.vertices.iter().copied().filter(|v| v[0] < 10.0).collect();
        simplify(
            &mut m,
            SimplifyOptions {
                target_triangles: 10,
                max_error: f64::INFINITY,
                protect_open_boundary: false,
            },
            |v| v[0] < 10.0,
        );
        let remaining: std::collections::HashSet<[u64; 3]> = m
            .vertices
            .iter()
            .map(|v| [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()])
            .collect();
        for v in protected_before {
            assert!(
                remaining.contains(&[v[0].to_bits(), v[1].to_bits(), v[2].to_bits()]),
                "protected vertex {v:?} removed"
            );
        }
    }

    #[test]
    fn open_boundary_is_preserved_by_default() {
        // A flat open square sheet: its rim must keep its exact outline.
        let mut m = TriMesh::new();
        let n = 8usize;
        for y in 0..=n {
            for x in 0..=n {
                m.vertices.push([x as f64, y as f64, 0.0]);
            }
        }
        let id = |x: usize, y: usize| (y * (n + 1) + x) as u32;
        for y in 0..n {
            for x in 0..n {
                m.triangles.push([id(x, y), id(x + 1, y), id(x + 1, y + 1)]);
                m.triangles.push([id(x, y), id(x + 1, y + 1), id(x, y + 1)]);
            }
        }
        let rim_before: HashSet<[u64; 2]> = m
            .vertices
            .iter()
            .filter(|v| v[0] == 0.0 || v[1] == 0.0 || v[0] == n as f64 || v[1] == n as f64)
            .map(|v| [v[0].to_bits(), v[1].to_bits()])
            .collect();
        simplify(&mut m, SimplifyOptions::default(), |_| false);
        // Interior of a flat sheet collapses to almost nothing, but every
        // rim vertex survives.
        let rim_after: HashSet<[u64; 2]> = m
            .vertices
            .iter()
            .filter(|v| v[0] == 0.0 || v[1] == 0.0 || v[0] == n as f64 || v[1] == n as f64)
            .map(|v| [v[0].to_bits(), v[1].to_bits()])
            .collect();
        assert_eq!(rim_before, rim_after);
        assert!(
            m.num_triangles() < 2 * n * n,
            "flat sheet not simplified at all"
        );
    }
}
