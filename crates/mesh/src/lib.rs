//! Mesh-based output pipeline — the paper's Sec. 3.2 I/O strategy.
//!
//! "Instead of writing all values of a cell, we only store the position of
//! the interfaces using a triangle surface mesh." This crate provides that
//! pipeline:
//!
//! * [`extract`] — per-block isosurface extraction of a phase field. The
//!   paper uses a custom marching-cubes variant [21]; we extract via
//!   **marching tetrahedra** (each cube split into six tetrahedra), which
//!   produces the same interfaces without the ambiguous MC cases, so the
//!   local meshes are guaranteed watertight and stitchable (the substitution
//!   is documented in DESIGN.md §2). Extraction "extends to the ghost
//!   regions such that the local meshes can be stitched together".
//! * [`simplify`] — quadric-error-metric edge collapse (Garland & Heckbert
//!   [12], the algorithm behind the VCG simplifier the paper uses), with the
//!   paper's trick of "assigning a high weight to all vertices that are
//!   located on block boundaries" so stitching still works afterwards.
//! * [`reduce`] — the hierarchical reduction: "two local meshes are
//!   gathered on a process, stitched together, and again coarsened in the
//!   stitched region. This step is repeated log₂(processes) times."
//! * [`TriMesh`] — indexed triangle mesh with welding, watertightness
//!   checks, area/volume measures, and binary STL / OBJ writers.

// Index-based loops deliberately mirror the paper's stencil formulations;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
#![deny(missing_docs)]

pub mod extract;
pub mod reduce;
pub mod simplify;

use std::collections::HashMap;
use std::io::Write;

/// An indexed triangle mesh.
#[derive(Clone, Debug, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<[f64; 3]>,
    /// Counter-clockwise triangles (indices into `vertices`).
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Append another mesh (no welding).
    pub fn append(&mut self, other: &TriMesh) {
        let off = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.triangles.extend(
            other
                .triangles
                .iter()
                .map(|t| [t[0] + off, t[1] + off, t[2] + off]),
        );
    }

    /// Total surface area.
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let [a, b, c] = self.tri_points(*t);
                0.5 * cross(sub(b, a), sub(c, a))
                    .map(|x| x * x)
                    .iter()
                    .sum::<f64>()
                    .sqrt()
            })
            .sum()
    }

    /// Signed volume enclosed by the mesh (meaningful for closed surfaces).
    pub fn signed_volume(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let [a, b, c] = self.tri_points(*t);
                dot(a, cross(b, c)) / 6.0
            })
            .sum()
    }

    fn tri_points(&self, t: [u32; 3]) -> [[f64; 3]; 3] {
        [
            self.vertices[t[0] as usize],
            self.vertices[t[1] as usize],
            self.vertices[t[2] as usize],
        ]
    }

    /// Weld vertices closer than `eps` (quantized hashing) and drop
    /// degenerate triangles. This is the "stitching" step of the reduction.
    pub fn weld(&mut self, eps: f64) {
        assert!(eps > 0.0);
        let inv = 1.0 / eps;
        let mut map: HashMap<[i64; 3], u32> = HashMap::new();
        let mut remap = vec![0u32; self.vertices.len()];
        let mut verts: Vec<[f64; 3]> = Vec::with_capacity(self.vertices.len());
        for (i, v) in self.vertices.iter().enumerate() {
            let key = [
                (v[0] * inv).round() as i64,
                (v[1] * inv).round() as i64,
                (v[2] * inv).round() as i64,
            ];
            let id = *map.entry(key).or_insert_with(|| {
                verts.push(*v);
                (verts.len() - 1) as u32
            });
            remap[i] = id;
        }
        self.vertices = verts;
        self.triangles = self
            .triangles
            .iter()
            .map(|t| {
                [
                    remap[t[0] as usize],
                    remap[t[1] as usize],
                    remap[t[2] as usize],
                ]
            })
            .filter(|t| t[0] != t[1] && t[1] != t[2] && t[0] != t[2])
            .collect();
    }

    /// Count of edges that are *not* shared by exactly two triangles.
    /// Zero for a closed (watertight) welded mesh; block-local meshes have
    /// boundary edges at the block border.
    pub fn open_edge_count(&self) -> usize {
        let mut edges: HashMap<(u32, u32), i32> = HashMap::new();
        for t in &self.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                *edges.entry(key).or_insert(0) += 1;
            }
        }
        edges.values().filter(|&&c| c != 2).count()
    }

    /// Euler characteristic V − E + F (2 for a welded sphere-like mesh).
    pub fn euler_characteristic(&self) -> i64 {
        let mut edges = std::collections::HashSet::new();
        for t in &self.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                edges.insert((a.min(b), a.max(b)));
            }
        }
        self.vertices.len() as i64 - edges.len() as i64 + self.triangles.len() as i64
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for v in &self.vertices {
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
        (lo, hi)
    }

    /// Write binary STL.
    pub fn write_stl(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut header = [0u8; 80];
        header[..9].copy_from_slice(b"eutectica");
        w.write_all(&header)?;
        w.write_all(&(self.triangles.len() as u32).to_le_bytes())?;
        for t in &self.triangles {
            let [a, b, c] = self.tri_points(*t);
            let n = normalize(cross(sub(b, a), sub(c, a)));
            for v in [n, a, b, c] {
                for x in v {
                    w.write_all(&(x as f32).to_le_bytes())?;
                }
            }
            w.write_all(&[0, 0])?;
        }
        Ok(())
    }

    /// Write Wavefront OBJ.
    pub fn write_obj(&self, w: &mut impl Write) -> std::io::Result<()> {
        for v in &self.vertices {
            writeln!(w, "v {} {} {}", v[0], v[1], v[2])?;
        }
        for t in &self.triangles {
            writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
        }
        Ok(())
    }

    /// Serialize to a byte payload (for the gather step of the hierarchical
    /// reduction over ranks).
    pub fn to_bytes(&self) -> bytes::Bytes {
        let mut out = Vec::with_capacity(16 + self.vertices.len() * 24 + self.triangles.len() * 12);
        out.extend_from_slice(&(self.vertices.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.triangles.len() as u64).to_le_bytes());
        for v in &self.vertices {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        for t in &self.triangles {
            for i in t {
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        bytes::Bytes::from(out)
    }

    /// Deserialize from [`TriMesh::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed payloads.
    pub fn from_bytes(b: &[u8]) -> Self {
        let nv = u64::from_le_bytes(b[0..8].try_into().unwrap()) as usize;
        let nt = u64::from_le_bytes(b[8..16].try_into().unwrap()) as usize;
        let mut pos = 16;
        let mut vertices = Vec::with_capacity(nv);
        for _ in 0..nv {
            let mut v = [0.0; 3];
            for x in v.iter_mut() {
                *x = f64::from_le_bytes(b[pos..pos + 8].try_into().unwrap());
                pos += 8;
            }
            vertices.push(v);
        }
        let mut triangles = Vec::with_capacity(nt);
        for _ in 0..nt {
            let mut t = [0u32; 3];
            for i in t.iter_mut() {
                *i = u32::from_le_bytes(b[pos..pos + 4].try_into().unwrap());
                pos += 4;
            }
            triangles.push(t);
        }
        Self {
            vertices,
            triangles,
        }
    }
}

pub(crate) fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

pub(crate) fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

pub(crate) fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

pub(crate) fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = dot(v, v).sqrt();
    if n == 0.0 {
        [0.0; 3]
    } else {
        [v[0] / n, v[1] / n, v[2] / n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tetrahedron() -> TriMesh {
        TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            // Outward-facing orientation.
            triangles: vec![[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]],
        }
    }

    #[test]
    fn tetra_measures() {
        let m = unit_tetrahedron();
        assert!((m.signed_volume() - 1.0 / 6.0).abs() < 1e-12);
        let expect_area = 1.5 + (3.0f64).sqrt() / 2.0;
        assert!((m.area() - expect_area).abs() < 1e-12);
        assert_eq!(m.open_edge_count(), 0);
        assert_eq!(m.euler_characteristic(), 2);
    }

    #[test]
    fn weld_merges_duplicates_and_drops_degenerates() {
        let mut m = TriMesh {
            vertices: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [1e-9, 0.0, 0.0], // duplicate of vertex 0
            ],
            triangles: vec![[0, 1, 2], [3, 1, 2], [0, 3, 1]],
        };
        m.weld(1e-6);
        assert_eq!(m.num_vertices(), 3);
        // [0,1,2] and [3,1,2] collapse to the same triangle; [0,3,1] is
        // degenerate after welding.
        assert_eq!(m.num_triangles(), 2);
    }

    #[test]
    fn append_offsets_indices() {
        let mut a = unit_tetrahedron();
        let b = unit_tetrahedron();
        a.append(&b);
        assert_eq!(a.num_vertices(), 8);
        assert_eq!(a.num_triangles(), 8);
        assert!(a.triangles[4..].iter().all(|t| t.iter().all(|&i| i >= 4)));
    }

    #[test]
    fn bytes_roundtrip() {
        let m = unit_tetrahedron();
        let b = m.to_bytes();
        let m2 = TriMesh::from_bytes(&b);
        assert_eq!(m.vertices, m2.vertices);
        assert_eq!(m.triangles, m2.triangles);
    }

    #[test]
    fn stl_and_obj_have_expected_sizes() {
        let m = unit_tetrahedron();
        let mut stl = Vec::new();
        m.write_stl(&mut stl).unwrap();
        assert_eq!(stl.len(), 80 + 4 + 4 * 50);
        let mut obj = Vec::new();
        m.write_obj(&mut obj).unwrap();
        let text = String::from_utf8(obj).unwrap();
        assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 4);
        assert_eq!(text.lines().filter(|l| l.starts_with("f ")).count(), 4);
    }
}
