//! Hierarchical stitch-and-coarsen mesh reduction.
//!
//! "In a first step, each process calls the edge-collapse algorithm on its
//! local mesh. ... Then, two local meshes are gathered on a process,
//! stitched together, and again coarsened in the stitched region. This step
//! is repeated log₂(processes) times where in each step only half of the
//! processes take part in the reduction." (Sec. 3.2)
//!
//! [`reduce_local`] runs the same binary-tree reduction over an in-memory
//! list of block meshes; [`reduce_over_ranks`] runs it across
//! `eutectica-comm` ranks with serialized mesh messages, ending with the
//! complete mesh on rank 0.

use crate::simplify::{simplify, SimplifyOptions};
use crate::TriMesh;
use eutectica_comm::Rank;

/// Options for the hierarchical reduction.
#[derive(Clone, Copy, Debug)]
pub struct ReduceOptions {
    /// Per-merge simplification settings. `protect_open_boundary` should
    /// stay `true` until the final merge so stitching keeps working.
    pub simplify: SimplifyOptions,
    /// Welding tolerance when stitching two halves.
    pub weld_eps: f64,
    /// Run a final, unprotected simplification pass on the fully stitched
    /// mesh (the domain boundary is then the only open border left).
    pub final_pass: bool,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        Self {
            simplify: SimplifyOptions::default(),
            weld_eps: 1e-9,
            final_pass: false,
        }
    }
}

/// Stitch `b` into `a` (append + weld) and coarsen the result.
pub fn stitch_and_coarsen(a: &mut TriMesh, b: &TriMesh, opts: &ReduceOptions) {
    a.append(b);
    a.weld(opts.weld_eps);
    simplify(a, opts.simplify, |_| false);
}

/// Binary-tree reduction of a list of per-block meshes into one mesh.
pub fn reduce_local(mut meshes: Vec<TriMesh>, opts: &ReduceOptions) -> TriMesh {
    if meshes.is_empty() {
        return TriMesh::new();
    }
    // Coarsen each local mesh first (boundary-protected).
    for m in &mut meshes {
        simplify(m, opts.simplify, |_| false);
    }
    // Pairwise rounds.
    while meshes.len() > 1 {
        let mut next = Vec::with_capacity(meshes.len().div_ceil(2));
        let mut it = meshes.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                stitch_and_coarsen(&mut a, &b, opts);
            }
            next.push(a);
        }
        meshes = next;
    }
    let mut out = meshes.pop().unwrap();
    if opts.final_pass {
        simplify(&mut out, opts.simplify, |_| false);
    }
    out
}

/// Message tag for mesh-reduction traffic.
const MESH_TAG: u32 = 0x00E5;

/// Reduce per-rank meshes across all ranks of a universe; rank 0 returns the
/// stitched (and coarsened) result, all other ranks return `None`.
///
/// In round r, rank `p` with `p % 2^(r+1) == 2^r` sends its mesh to
/// `p − 2^r`; receivers stitch and coarsen — exactly half of the previous
/// participants per round, log₂(P) rounds.
pub fn reduce_over_ranks(rank: &Rank, mut local: TriMesh, opts: &ReduceOptions) -> Option<TriMesh> {
    simplify(&mut local, opts.simplify, |_| false);
    let p = rank.rank();
    let size = rank.size();
    let mut stride = 1;
    while stride < size {
        if p % (2 * stride) == stride {
            rank.send(p - stride, MESH_TAG, local.to_bytes());
            return None;
        }
        if p % (2 * stride) == 0 && p + stride < size {
            let payload = rank.recv(p + stride, MESH_TAG);
            let other = TriMesh::from_bytes(&payload);
            stitch_and_coarsen(&mut local, &other, opts);
        }
        stride *= 2;
    }
    if p == 0 {
        if opts.final_pass {
            simplify(&mut local, opts.simplify, |_| false);
        }
        Some(local)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_isosurface;
    use eutectica_blockgrid::field::SoaField;
    use eutectica_blockgrid::GridDims;
    use eutectica_comm::Universe;
    use std::sync::Arc;

    /// Sphere of radius `r` centered in a 24³ domain, split into `nz_blocks`
    /// z-slabs with correct ghost values; returns per-slab meshes.
    fn slab_meshes(nz_blocks: usize, r: f64) -> Vec<TriMesh> {
        let n = 24usize;
        let bz = n / nz_blocks;
        (0..nz_blocks)
            .map(|k| {
                let dims = GridDims::new(n, n, bz, 1);
                let mut f = SoaField::<1>::new(dims, [0.0]);
                for z in 0..dims.tz() {
                    for y in 0..dims.ty() {
                        for x in 0..dims.tx() {
                            let p = [x as f64 - 1.0, y as f64 - 1.0, (z + k * bz) as f64 - 1.0];
                            let c = n as f64 / 2.0;
                            let d = ((p[0] - c).powi(2) + (p[1] - c).powi(2) + (p[2] - c).powi(2))
                                .sqrt();
                            f.set(0, x, y, z, 0.5 - 0.5 * ((d - r) / 1.5).tanh());
                        }
                    }
                }
                extract_isosurface(f.comp(0), dims, [0.0, 0.0, (k * bz) as f64], 0.5)
            })
            .collect()
    }

    #[test]
    fn local_reduction_produces_closed_coarser_sphere() {
        let meshes = slab_meshes(4, 8.0);
        let total_before: usize = meshes.iter().map(|m| m.num_triangles()).sum();
        let opts = ReduceOptions {
            simplify: SimplifyOptions {
                target_triangles: 0,
                max_error: 5e-3,
                protect_open_boundary: true,
            },
            ..Default::default()
        };
        let out = reduce_local(meshes, &opts);
        assert_eq!(out.open_edge_count(), 0, "reduced mesh not watertight");
        assert!(
            out.num_triangles() < total_before,
            "no coarsening happened: {total_before} -> {}",
            out.num_triangles()
        );
        let vol = out.signed_volume();
        let expect = 4.0 / 3.0 * std::f64::consts::PI * 8.0f64.powi(3);
        assert!(
            (vol - expect).abs() / expect < 0.1,
            "volume {vol} vs {expect}"
        );
    }

    #[test]
    fn rank_reduction_matches_local_reduction_topology() {
        let opts = ReduceOptions::default();
        let meshes = slab_meshes(4, 7.0);
        let expected = reduce_local(meshes.clone(), &opts);
        let meshes = Arc::new(meshes);
        let results = Universe::run(4, move |rank| {
            let local = meshes[rank.rank()].clone();
            reduce_over_ranks(&rank, local, &ReduceOptions::default())
                .map(|m| (m.num_triangles(), m.open_edge_count(), m.signed_volume()))
        });
        let (tris, open, vol) = results[0].expect("rank 0 has the result");
        assert!(results[1..].iter().all(|r| r.is_none()));
        assert_eq!(open, 0);
        // The pairing order differs (ranks pair 0-1/2-3 vs list pairing), so
        // triangle counts match only approximately; volume must agree well.
        assert!(
            (vol - expected.signed_volume()).abs() / vol < 0.05,
            "volume {vol} vs {}",
            expected.signed_volume()
        );
        assert!(tris > 100);
    }

    #[test]
    fn single_rank_reduction_is_identity_pipeline() {
        let out = Universe::run(1, |rank| {
            let meshes = slab_meshes(1, 6.0);
            reduce_over_ranks(
                &rank,
                meshes.into_iter().next().unwrap(),
                &ReduceOptions::default(),
            )
            .map(|m| m.open_edge_count())
        });
        assert_eq!(out[0], Some(0));
    }
}
