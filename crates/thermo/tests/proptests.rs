//! Property-based tests of the thermodynamic identities.

use eutectica_thermo::{SliceThermo, TernarySystem, LIQUID, N_PHASES};
use proptest::prelude::*;

fn arb_mu() -> impl Strategy<Value = [f64; 2]> {
    prop::array::uniform2(-2.0..2.0f64)
}

fn arb_t() -> impl Strategy<Value = f64> {
    0.85..1.15f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// µ ↔ c is an exact bijection at every temperature.
    #[test]
    fn mu_c_bijection(mu in arb_mu(), t in arb_t(), a in 0usize..N_PHASES) {
        let s = TernarySystem::ag_al_cu();
        let c = s.c_of_mu(a, mu, t);
        let back = s.mu_of_c(a, c, t);
        prop_assert!((mu[0] - back[0]).abs() < 1e-10);
        prop_assert!((mu[1] - back[1]).abs() < 1e-10);
    }

    /// The grand potential is the Legendre transform of the free energy:
    /// ψ(µ) = f(c(µ)) − µ·c(µ), everywhere.
    #[test]
    fn legendre_identity(mu in arb_mu(), t in arb_t(), a in 0usize..N_PHASES) {
        let s = TernarySystem::ag_al_cu();
        let c = s.c_of_mu(a, mu, t);
        let psi = s.grand_potential(a, mu, t);
        let f = s.free_energy(a, c, t);
        let legendre = f - (mu[0] * c[0] + mu[1] * c[1]);
        prop_assert!((psi - legendre).abs() < 1e-10, "{psi} vs {legendre}");
    }

    /// ψ is concave in µ (its Hessian is −χ ≺ 0): the chord lies below.
    #[test]
    fn grand_potential_is_concave(mu1 in arb_mu(), mu2 in arb_mu(), t in arb_t(), a in 0usize..N_PHASES, w in 0.0..1.0f64) {
        let s = TernarySystem::ag_al_cu();
        let mid = [
            w * mu1[0] + (1.0 - w) * mu2[0],
            w * mu1[1] + (1.0 - w) * mu2[1],
        ];
        let psi_mid = s.grand_potential(a, mid, t);
        let chord = w * s.grand_potential(a, mu1, t) + (1.0 - w) * s.grand_potential(a, mu2, t);
        prop_assert!(psi_mid >= chord - 1e-9, "{psi_mid} < {chord}");
    }

    /// The susceptibility is positive (thermodynamic stability) at all
    /// relevant temperatures.
    #[test]
    fn susceptibility_positive(t in arb_t(), a in 0usize..N_PHASES) {
        let s = TernarySystem::ag_al_cu();
        let chi = s.susceptibility(a, t);
        prop_assert!(chi[0] > 0.0 && chi[1] > 0.0, "{chi:?}");
    }

    /// Below T_eu every solid has lower grand potential than the liquid at
    /// µ = 0; above, the liquid wins (the eutectic-point construction).
    #[test]
    fn undercooling_sign(dt in 1e-4..0.1f64) {
        let s = TernarySystem::ag_al_cu();
        for a in 0..3 {
            prop_assert!(
                s.grand_potential(a, [0.0; 2], 1.0 - dt) < s.grand_potential(LIQUID, [0.0; 2], 1.0 - dt)
            );
            prop_assert!(
                s.grand_potential(a, [0.0; 2], 1.0 + dt) > s.grand_potential(LIQUID, [0.0; 2], 1.0 + dt)
            );
        }
    }

    /// The slice precompute agrees with direct evaluation for every (µ, T).
    #[test]
    fn slice_matches_direct(mu in arb_mu(), t in arb_t(), a in 0usize..N_PHASES) {
        let s = TernarySystem::ag_al_cu();
        let slice = SliceThermo::at(&s, t);
        prop_assert!((slice.grand_potential(&s, a, mu) - s.grand_potential(a, mu, t)).abs() < 1e-12);
        let c1 = slice.c_of_mu(&s, a, mu);
        let c2 = s.c_of_mu(a, mu, t);
        prop_assert!((c1[0] - c2[0]).abs() < 1e-12 && (c1[1] - c2[1]).abs() < 1e-12);
    }
}
