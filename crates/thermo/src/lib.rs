//! Parabolic grand-potential thermodynamics for ternary eutectic systems.
//!
//! The SC'15 paper couples its phase-field model to the concentration
//! evolution through grand potentials ψ_α(µ, T) "derived by parabolically
//! fitted Gibbs energies which are derived from the thermodynamic Calphad
//! databases" (Sec. 2, ref. [5]). The full Calphad description is only needed
//! far from the eutectic point; near it, each phase α is represented by a
//! parabolic free energy per component i ∈ {Ag, Cu} (Al is eliminated by mass
//! conservation, reducing K = 3 components to K − 1 = 2 chemical potentials):
//!
//! ```text
//! f_α(c, T) = Σ_i k_i^α (c_i − c_i^{α,eq}(T))²  +  X_α(T)
//! c_i^{α,eq}(T) = c_i^{α,eu} + s_i^α (T − T_eu)          (phase-diagram slopes)
//! X_α(T)       = L_α (T − T_eu) / T_eu                   (driving-force offset)
//! ```
//!
//! All downstream quantities follow in closed form:
//!
//! * chemical potential   µ_i = ∂f/∂c_i = 2 k_i (c_i − c_i^eq)
//! * phase concentration  c_i^α(µ,T) = c_i^eq(T) + µ_i / (2 k_i)
//! * grand potential      ψ_α(µ,T) = f − µ·c = −Σ_i µ_i²/(4 k_i) − µ·c^eq(T) + X_α(T)
//! * susceptibility       (∂c_i/∂µ_j)_α = δ_ij / (2 k_i)   (diagonal)
//! * temperature coupling (∂c_i/∂T)_α = s_i^α
//!
//! Chemical potentials are measured **relative to the eutectic equilibrium**:
//! at T = T_eu, µ = 0 all four grand potentials coincide (X_α(T_eu) = 0), so
//! the eutectic point is built in exactly. Undercooling (T < T_eu) lowers the
//! solid grand potentials via L_α > 0, producing the physical driving force
//! with the correct solidus/liquidus slopes.
//!
//! Everything is nondimensionalized (T_eu = 1, liquid diffusivity D_ℓ = 1),
//! which is the standard PACE3D/waLBerla practice; see DESIGN.md §2.3 for the
//! substitution rationale.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};

/// Number of thermodynamic phases N (3 solids + liquid).
pub const N_PHASES: usize = 4;

/// Number of independent chemical potentials / concentrations (K − 1 = 2).
pub const N_COMP: usize = 2;

/// Index of the liquid phase in all per-phase arrays.
pub const LIQUID: usize = 3;

/// Phase identifiers for the Ag-Al-Cu ternary eutectic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum Phase {
    /// α: Al-rich fcc solid solution.
    AlFcc = 0,
    /// γ: Ag₂Al intermetallic.
    Ag2Al = 1,
    /// θ: Al₂Cu intermetallic.
    Al2Cu = 2,
    /// Melt.
    Liquid = 3,
}

impl Phase {
    /// All phases in index order.
    pub const ALL: [Phase; N_PHASES] = [Phase::AlFcc, Phase::Ag2Al, Phase::Al2Cu, Phase::Liquid];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::AlFcc => "Al(fcc)",
            Phase::Ag2Al => "Ag2Al",
            Phase::Al2Cu => "Al2Cu",
            Phase::Liquid => "liquid",
        }
    }
}

/// Parabolic free-energy description of one phase.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct PhaseThermo {
    /// Parabolic curvatures k_i (one per independent component). Must be > 0.
    pub curvature: [f64; N_COMP],
    /// Equilibrium concentrations at the eutectic temperature, c_i^{eu}.
    pub c_eu: [f64; N_COMP],
    /// Slopes s_i = dc_i^eq/dT of the equilibrium concentration lines
    /// (solidus planes for solids, liquidus plane for the liquid).
    pub dc_eq_dt: [f64; N_COMP],
    /// Scaled latent heat L_α; X_α(T) = L_α (T − T_eu)/T_eu. Zero for liquid.
    pub latent: f64,
    /// Diffusivity prefactor D_α (nondimensional, D_liquid = 1).
    pub diffusivity: f64,
    /// Relative temperature slope κ_i of the parabolic curvature:
    /// k_i(T) = k_i · (1 + κ_i (T − T_eu)). The Calphad-fitted parabolas of
    /// [5] have temperature-dependent coefficients — this is what makes the
    /// "temperature dependent diffusive concentration ... very compute
    /// intensive" (paper abstract) and what the T(z) optimization amortizes.
    pub dk_dt: [f64; N_COMP],
}

impl PhaseThermo {
    /// Equilibrium concentration at temperature `t`.
    #[inline]
    pub fn c_eq(&self, t: f64, t_eu: f64) -> [f64; N_COMP] {
        [
            self.c_eu[0] + self.dc_eq_dt[0] * (t - t_eu),
            self.c_eu[1] + self.dc_eq_dt[1] * (t - t_eu),
        ]
    }

    /// Grand-potential offset X(T).
    #[inline]
    pub fn offset(&self, t: f64, t_eu: f64) -> f64 {
        self.latent * (t - t_eu) / t_eu
    }

    /// Temperature-dependent parabolic curvature k_i(T).
    #[inline]
    pub fn curvature_at(&self, t: f64, t_eu: f64) -> [f64; N_COMP] {
        [
            self.curvature[0] * (1.0 + self.dk_dt[0] * (t - t_eu)),
            self.curvature[1] * (1.0 + self.dk_dt[1] * (t - t_eu)),
        ]
    }
}

/// Complete thermodynamic description of a ternary eutectic system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TernarySystem {
    /// Per-phase parabolic descriptions, indexed by [`Phase`] order.
    pub phases: [PhaseThermo; N_PHASES],
    /// Eutectic temperature (1.0 in nondimensional units).
    pub t_eu: f64,
}

impl TernarySystem {
    /// The Ag-Al-Cu ternary eutectic system used throughout the paper.
    ///
    /// Nondimensionalized: T_eu = 1, D_liquid = 1. Compositions are atomic
    /// fractions (c = [c_Ag, c_Cu]); the eutectic liquid composition and the
    /// near-stoichiometric solid compositions follow Witusiewicz et al. and
    /// the experimental characterization by Genau/Dennstedt cited in the
    /// paper. The lever rule applied to these compositions gives solid
    /// volume fractions ≈ (0.39, 0.24, 0.38) for (Al, Ag₂Al, Al₂Cu) — the
    /// "similar phase fractions" regime the paper highlights.
    pub fn ag_al_cu() -> Self {
        Self {
            phases: [
                // α-Al (fcc): dilute in Ag and Cu.
                PhaseThermo {
                    curvature: [10.0, 10.0],
                    c_eu: [0.05, 0.03],
                    dc_eq_dt: [0.01, 0.01],
                    latent: 4.0,
                    diffusivity: 1e-4,
                    dk_dt: [0.3, 0.3],
                },
                // Ag₂Al: Ag-rich intermetallic (stoichiometric c_Ag = 2/3).
                PhaseThermo {
                    curvature: [10.0, 10.0],
                    c_eu: [0.667, 0.01],
                    dc_eq_dt: [0.01, 0.01],
                    latent: 4.0,
                    diffusivity: 1e-4,
                    dk_dt: [0.3, 0.3],
                },
                // Al₂Cu: Cu-rich intermetallic (stoichiometric c_Cu = 1/3).
                PhaseThermo {
                    curvature: [10.0, 10.0],
                    c_eu: [0.01, 0.333],
                    dc_eq_dt: [0.01, 0.01],
                    latent: 4.0,
                    diffusivity: 1e-4,
                    dk_dt: [0.3, 0.3],
                },
                // Liquid at the ternary eutectic composition.
                PhaseThermo {
                    curvature: [2.0, 2.0],
                    c_eu: [0.18, 0.14],
                    dc_eq_dt: [0.05, 0.05],
                    latent: 0.0,
                    diffusivity: 1.0,
                    dk_dt: [0.2, 0.2],
                },
            ],
            t_eu: 1.0,
        }
    }

    /// Phase concentration c^α(µ, T).
    #[inline]
    pub fn c_of_mu(&self, alpha: usize, mu: [f64; N_COMP], t: f64) -> [f64; N_COMP] {
        let p = &self.phases[alpha];
        let c_eq = p.c_eq(t, self.t_eu);
        let k = p.curvature_at(t, self.t_eu);
        [
            c_eq[0] + mu[0] / (2.0 * k[0]),
            c_eq[1] + mu[1] / (2.0 * k[1]),
        ]
    }

    /// Chemical potential µ = ∂f_α/∂c for a given phase concentration.
    #[inline]
    pub fn mu_of_c(&self, alpha: usize, c: [f64; N_COMP], t: f64) -> [f64; N_COMP] {
        let p = &self.phases[alpha];
        let c_eq = p.c_eq(t, self.t_eu);
        let k = p.curvature_at(t, self.t_eu);
        [2.0 * k[0] * (c[0] - c_eq[0]), 2.0 * k[1] * (c[1] - c_eq[1])]
    }

    /// Parabolic free energy f_α(c, T).
    #[inline]
    pub fn free_energy(&self, alpha: usize, c: [f64; N_COMP], t: f64) -> f64 {
        let p = &self.phases[alpha];
        let c_eq = p.c_eq(t, self.t_eu);
        let k = p.curvature_at(t, self.t_eu);
        let d0 = c[0] - c_eq[0];
        let d1 = c[1] - c_eq[1];
        k[0] * d0 * d0 + k[1] * d1 * d1 + p.offset(t, self.t_eu)
    }

    /// Grand potential ψ_α(µ, T) = f − µ·c (Legendre transform of `free_energy`).
    #[inline]
    pub fn grand_potential(&self, alpha: usize, mu: [f64; N_COMP], t: f64) -> f64 {
        let p = &self.phases[alpha];
        let c_eq = p.c_eq(t, self.t_eu);
        let k = p.curvature_at(t, self.t_eu);
        -(mu[0] * mu[0] / (4.0 * k[0]) + mu[1] * mu[1] / (4.0 * k[1]))
            - (mu[0] * c_eq[0] + mu[1] * c_eq[1])
            + p.offset(t, self.t_eu)
    }

    /// Diagonal susceptibility (∂c/∂µ)_α = diag(1/(2k_i(T))).
    #[inline]
    pub fn susceptibility(&self, alpha: usize, t: f64) -> [f64; N_COMP] {
        let k = self.phases[alpha].curvature_at(t, self.t_eu);
        [1.0 / (2.0 * k[0]), 1.0 / (2.0 * k[1])]
    }

    /// Temperature coupling (∂c/∂T)_α at fixed µ (= slope of c^eq).
    #[inline]
    pub fn dc_dt(&self, alpha: usize) -> [f64; N_COMP] {
        self.phases[alpha].dc_eq_dt
    }

    /// Per-phase mobility contribution D_α · χ_α(T) (diagonal).
    #[inline]
    pub fn mobility(&self, alpha: usize, t: f64) -> [f64; N_COMP] {
        let chi = self.susceptibility(alpha, t);
        let d = self.phases[alpha].diffusivity;
        [d * chi[0], d * chi[1]]
    }

    /// Solid volume fractions (Al, Ag₂Al, Al₂Cu) from the lever rule at the
    /// eutectic point: solve Σ_α f_α c^α = c^ℓ with Σ f_α = 1.
    ///
    /// Used by the Voronoi initialization to seed solid nuclei "with respect
    /// to the given volume fractions of the phases" (Sec. 2.1).
    pub fn eutectic_fractions(&self) -> [f64; 3] {
        let c = |a: usize| self.phases[a].c_eu;
        let (ca, cb, cc, cl) = (c(0), c(1), c(2), c(3));
        // Solve the 3x3 linear system
        //   [ca0 cb0 cc0] [fa]   [cl0]
        //   [ca1 cb1 cc1] [fb] = [cl1]
        //   [ 1   1   1 ] [fc]   [ 1 ]
        let m = [
            [ca[0], cb[0], cc[0]],
            [ca[1], cb[1], cc[1]],
            [1.0, 1.0, 1.0],
        ];
        let rhs = [cl[0], cl[1], 1.0];
        solve3(m, rhs)
    }

    /// Physically plausible per-component bounds on the chemical potential,
    /// `[(lo, hi); N_COMP]`, derived from the parabolic free energies: the
    /// extreme values µ_i = 2 k_i(T) (c_i − c_i^eq(T)) can take for *any*
    /// phase with concentrations in `[−c_margin, 1 + c_margin]` (atomic
    /// fractions padded by `c_margin`) and temperatures in `[t_lo, t_hi]`.
    ///
    /// A µ value outside these bounds cannot arise from any physical
    /// composition and therefore indicates corrupted state — this is the
    /// contract the `core::health` invariant scans enforce at runtime.
    ///
    /// k_i(T)·(c − c_i^eq(T)) is quadratic in T, so the extremum over the
    /// temperature interval need not sit at an endpoint; the interval is
    /// sampled densely, which is exact enough for a plausibility envelope.
    pub fn mu_plausible_bounds(&self, t_lo: f64, t_hi: f64, c_margin: f64) -> [(f64, f64); N_COMP] {
        assert!(t_lo <= t_hi, "empty temperature interval");
        assert!(c_margin >= 0.0, "negative concentration margin");
        let mut bounds = [(f64::INFINITY, f64::NEG_INFINITY); N_COMP];
        const T_SAMPLES: usize = 17;
        for s in 0..T_SAMPLES {
            let t = t_lo + (t_hi - t_lo) * s as f64 / (T_SAMPLES - 1) as f64;
            for ph in &self.phases {
                let c_eq = ph.c_eq(t, self.t_eu);
                let k = ph.curvature_at(t, self.t_eu);
                for i in 0..N_COMP {
                    for c in [-c_margin, 1.0 + c_margin] {
                        let mu = 2.0 * k[i] * (c - c_eq[i]);
                        bounds[i].0 = bounds[i].0.min(mu);
                        bounds[i].1 = bounds[i].1.max(mu);
                    }
                }
            }
        }
        bounds
    }
}

/// Solve a 3×3 linear system by Cramer's rule.
fn solve3(m: [[f64; 3]; 3], b: [f64; 3]) -> [f64; 3] {
    let det = det3(m);
    assert!(det.abs() > 1e-12, "singular phase-composition matrix");
    let mut out = [0.0; 3];
    for (col, o) in out.iter_mut().enumerate() {
        let mut mc = m;
        for row in 0..3 {
            mc[row][col] = b[row];
        }
        *o = det3(mc) / det;
    }
    out
}

fn det3(m: [[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

/// Per-z-slice precomputed thermodynamic quantities.
///
/// The paper's "T(z) optimization" (Sec. 3.3): with the frozen-temperature
/// ansatz T depends only on z and t, so every temperature-dependent quantity
/// can be evaluated once per x-y-slice instead of once per cell. This struct
/// is that precomputation; the optimized kernels take one per slice while the
/// unoptimized rungs recompute the same values per cell.
#[derive(Copy, Clone, Debug)]
pub struct SliceThermo {
    /// Temperature of this slice.
    pub t: f64,
    /// c^eq_α(T) per phase.
    pub c_eq: [[f64; N_COMP]; N_PHASES],
    /// Grand-potential offsets X_α(T).
    pub offset: [f64; N_PHASES],
    /// 1/(4 k_i(T)) per phase (grand-potential coefficients).
    pub inv4k: [[f64; N_COMP]; N_PHASES],
    /// 1/(2 k_i(T)) per phase (susceptibilities).
    pub inv2k: [[f64; N_COMP]; N_PHASES],
    /// D_α χ_α(T) per phase (mobility coefficients).
    pub mob: [[f64; N_COMP]; N_PHASES],
}

impl SliceThermo {
    /// Evaluate all temperature-dependent quantities at temperature `t`.
    pub fn at(sys: &TernarySystem, t: f64) -> Self {
        let mut c_eq = [[0.0; N_COMP]; N_PHASES];
        let mut offset = [0.0; N_PHASES];
        let mut inv4k = [[0.0; N_COMP]; N_PHASES];
        let mut inv2k = [[0.0; N_COMP]; N_PHASES];
        let mut mob = [[0.0; N_COMP]; N_PHASES];
        for a in 0..N_PHASES {
            let ph = &sys.phases[a];
            c_eq[a] = ph.c_eq(t, sys.t_eu);
            offset[a] = ph.offset(t, sys.t_eu);
            let k = ph.curvature_at(t, sys.t_eu);
            for i in 0..N_COMP {
                inv4k[a][i] = 1.0 / (4.0 * k[i]);
                inv2k[a][i] = 1.0 / (2.0 * k[i]);
                mob[a][i] = ph.diffusivity * inv2k[a][i];
            }
        }
        Self {
            t,
            c_eq,
            offset,
            inv4k,
            inv2k,
            mob,
        }
    }

    /// Grand potential of phase `alpha` at chemical potential `mu` using the
    /// precomputed slice data (must equal [`TernarySystem::grand_potential`]).
    #[inline(always)]
    pub fn grand_potential(&self, _sys: &TernarySystem, alpha: usize, mu: [f64; N_COMP]) -> f64 {
        -(mu[0] * mu[0] * self.inv4k[alpha][0] + mu[1] * mu[1] * self.inv4k[alpha][1])
            - (mu[0] * self.c_eq[alpha][0] + mu[1] * self.c_eq[alpha][1])
            + self.offset[alpha]
    }

    /// Phase concentration using precomputed c_eq.
    #[inline(always)]
    pub fn c_of_mu(&self, _sys: &TernarySystem, alpha: usize, mu: [f64; N_COMP]) -> [f64; N_COMP] {
        [
            self.c_eq[alpha][0] + mu[0] * self.inv2k[alpha][0],
            self.c_eq[alpha][1] + mu[1] * self.inv2k[alpha][1],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> TernarySystem {
        TernarySystem::ag_al_cu()
    }

    #[test]
    fn mu_c_roundtrip() {
        let s = sys();
        for a in 0..N_PHASES {
            for &t in &[0.95, 1.0, 1.02] {
                let mu = [0.3, -0.2];
                let c = s.c_of_mu(a, mu, t);
                let mu2 = s.mu_of_c(a, c, t);
                assert!((mu[0] - mu2[0]).abs() < 1e-12);
                assert!((mu[1] - mu2[1]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn grand_potential_is_legendre_transform() {
        let s = sys();
        for a in 0..N_PHASES {
            for &t in &[0.9, 1.0, 1.1] {
                for &mu in &[[0.0, 0.0], [0.5, -0.3], [-1.0, 0.25]] {
                    let c = s.c_of_mu(a, mu, t);
                    let psi = s.grand_potential(a, mu, t);
                    let f = s.free_energy(a, c, t);
                    let legendre = f - (mu[0] * c[0] + mu[1] * c[1]);
                    assert!(
                        (psi - legendre).abs() < 1e-12,
                        "phase {a}: psi={psi} vs f-mu.c={legendre}"
                    );
                }
            }
        }
    }

    #[test]
    fn eutectic_point_is_quadruple_equilibrium() {
        // At T = T_eu and µ = 0, all four grand potentials must coincide:
        // this is the defining property of the ternary eutectic point.
        let s = sys();
        let psi: Vec<f64> = (0..N_PHASES)
            .map(|a| s.grand_potential(a, [0.0, 0.0], s.t_eu))
            .collect();
        for a in 1..N_PHASES {
            assert!(
                (psi[a] - psi[0]).abs() < 1e-14,
                "psi mismatch at eutectic: {psi:?}"
            );
        }
    }

    #[test]
    fn undercooling_favors_all_solids() {
        let s = sys();
        let t = 0.97; // 3% undercooling
        let psi_l = s.grand_potential(LIQUID, [0.0, 0.0], t);
        for a in 0..3 {
            let psi_s = s.grand_potential(a, [0.0, 0.0], t);
            assert!(
                psi_s < psi_l,
                "solid {a} not favored below T_eu: {psi_s} >= {psi_l}"
            );
        }
        // And above the eutectic temperature the liquid must win.
        let t = 1.03;
        let psi_l = s.grand_potential(LIQUID, [0.0, 0.0], t);
        for a in 0..3 {
            assert!(s.grand_potential(a, [0.0, 0.0], t) > psi_l);
        }
    }

    #[test]
    fn susceptibility_is_dc_dmu() {
        let s = sys();
        let t = 0.99;
        let eps = 1e-6;
        for a in 0..N_PHASES {
            let chi = s.susceptibility(a, t);
            for i in 0..N_COMP {
                let mut mu_p = [0.1, 0.2];
                let mut mu_m = [0.1, 0.2];
                mu_p[i] += eps;
                mu_m[i] -= eps;
                let num = (s.c_of_mu(a, mu_p, t)[i] - s.c_of_mu(a, mu_m, t)[i]) / (2.0 * eps);
                assert!((num - chi[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eutectic_fractions_sum_to_one_and_are_positive() {
        let f = sys().eutectic_fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions {f:?} sum {sum}");
        for (i, &fi) in f.iter().enumerate() {
            assert!(fi > 0.05 && fi < 0.9, "fraction {i} out of range: {fi}");
        }
        // Lever-rule consistency: Σ f_α c^α = c^ℓ.
        let s = sys();
        for comp in 0..N_COMP {
            let mix: f64 = (0..3).map(|a| f[a] * s.phases[a].c_eu[comp]).sum();
            assert!((mix - s.phases[LIQUID].c_eu[comp]).abs() < 1e-12);
        }
    }

    #[test]
    fn mu_plausible_bounds_contain_all_physical_mu() {
        let s = sys();
        let b = s.mu_plausible_bounds(0.9, 1.1, 0.25);
        // Every µ reachable from an in-range composition must lie inside.
        for a in 0..N_PHASES {
            for &t in &[0.9, 0.95, 1.0, 1.05, 1.1] {
                for &c0 in &[-0.25, 0.0, 0.5, 1.0, 1.25] {
                    for &c1 in &[-0.25, 0.0, 0.5, 1.0, 1.25] {
                        let mu = s.mu_of_c(a, [c0, c1], t);
                        for i in 0..N_COMP {
                            assert!(
                                mu[i] >= b[i].0 - 1e-12 && mu[i] <= b[i].1 + 1e-12,
                                "phase {a} t={t} c=({c0},{c1}): mu[{i}]={} outside {:?}",
                                mu[i],
                                b[i]
                            );
                        }
                    }
                }
            }
        }
        // The envelope is finite, nonempty, and straddles zero (eutectic
        // equilibrium µ = 0 must always be plausible).
        for (lo, hi) in b {
            assert!(lo.is_finite() && hi.is_finite() && lo < 0.0 && hi > 0.0);
        }
        // A wider concentration margin can only widen the envelope.
        let wider = s.mu_plausible_bounds(0.9, 1.1, 0.5);
        for i in 0..N_COMP {
            assert!(wider[i].0 <= b[i].0 && wider[i].1 >= b[i].1);
        }
    }

    #[test]
    fn slice_precompute_matches_direct_evaluation() {
        let s = sys();
        for &t in &[0.93, 1.0, 1.05] {
            let slice = SliceThermo::at(&s, t);
            for a in 0..N_PHASES {
                for &mu in &[[0.0, 0.0], [0.4, -0.1]] {
                    let direct = s.grand_potential(a, mu, t);
                    let pre = slice.grand_potential(&s, a, mu);
                    assert!((direct - pre).abs() < 1e-14);
                    let cd = s.c_of_mu(a, mu, t);
                    let cp = slice.c_of_mu(&s, a, mu);
                    assert!((cd[0] - cp[0]).abs() < 1e-14);
                    assert!((cd[1] - cp[1]).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn driving_force_slope_matches_latent_heat() {
        // dψ_s/dT − dψ_ℓ/dT at µ=0 should equal L_s/T_eu − (c-slope terms).
        // Verify numerically that the undercooling response is linear.
        let s = sys();
        let d =
            |t: f64| s.grand_potential(0, [0.0, 0.0], t) - s.grand_potential(LIQUID, [0.0, 0.0], t);
        let d1 = d(0.99);
        let d2 = d(0.98);
        // Linear: doubling the undercooling doubles the driving force.
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }
}
