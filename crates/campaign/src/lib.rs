//! Campaign engine: co-scheduled parameter-sweep fleets with per-job
//! isolation.
//!
//! The solver's production workflow (SC'15 §6) is not one hero run but a
//! *sweep*: dozens of small directional-solidification simulations across
//! pulling velocity `v`, thermal gradient `G`, composition, and nucleation
//! seed, mapping the lamellar-spacing/undercooling response surface. This
//! crate runs such a sweep as one co-scheduled fleet on a single rank
//! universe instead of N sequential launches:
//!
//! - [`CampaignSpec`] expands the parameter grid into a deterministic,
//!   densely keyed job list ([`JobSpec`]) — every rank derives it without
//!   communicating ([`spec`]).
//! - [`sched::plan`] assigns jobs to ranks with the same LPT placement
//!   idiom the block rebalancer uses, keyed by estimated cost from the
//!   autotuner's per-region kernel rates ([`sched`]).
//! - [`run_campaign`] steps each rank's resident jobs round-robin through
//!   the existing [`eutectica_core::solver::Simulation`] machinery and
//!   streams per-job progress to a collector rank on job-keyed comm tags
//!   above the ghost/epoch tag space ([`runner`]).
//!
//! Jobs are *isolated*: each owns its checkpoint namespace, health
//! monitor, fault plan, and rollback budget, so a NaN rollback or failure
//! in one job never perturbs a sibling — and a job inside a campaign is
//! bit-identical to the same point run standalone, at any rank count and
//! thread count (`tests/campaign_isolation.rs` pins both properties).
//! Rank deaths shrink the fleet: survivors adopt the dead rank's jobs from
//! their per-job checkpoints and the campaign completes.

#![deny(missing_docs)]

pub mod runner;
pub mod sched;
pub mod spec;

pub use runner::{
    field_checksum, run_campaign, standalone_sim, CampaignOpts, CampaignReport, FleetSummary,
    JobStatus, LocalJobResult,
};
pub use sched::{estimated_cost, plan, Schedule};
pub use spec::{CampaignError, CampaignSpec, JobSpec};
