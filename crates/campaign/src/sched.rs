//! Deterministic job→rank co-scheduling.
//!
//! The scheduler is the LPT placement idiom from the block rebalancer,
//! lifted from blocks to whole jobs: each job's weight is its *estimated
//! cost* — step budget × per-step cost from the autotuner's per-region
//! kernel rates (interface / liquid / solid MLUP/s) applied to an analytic
//! region census of the directional initial condition. The estimate only
//! has to be a pure function of the job spec: [`plan`] is then replicated
//! arithmetic, so every rank derives the identical assignment, and the
//! rank-0 broadcast in the runner is a *confirmation* of a shared decision
//! (and the single source of truth if estimators ever diverge).

use eutectica_blockgrid::balance::assign_lpt_over;
use eutectica_core::regions::{block_weight, RegionCounts};

use crate::spec::JobSpec;

/// Estimated relative cost of one job: steps × per-step cost of its
/// domain under the given per-region rates (`[interface, liquid, solid]`
/// MLUP/s, e.g. `eutectica_core::regions::DEFAULT_REGION_RATES` or live
/// autotuner measurements).
///
/// The region census is analytic, not measured: the directional initial
/// condition fills the bottom quarter (≥2 layers) with Voronoi solid,
/// topped by a solidification front; we charge ~2 layers of front cells,
/// grain-boundary walls proportional to the fill perimeter, and the rest
/// as bulk. Zero-step jobs get a small positive epsilon so LPT still
/// spreads them.
pub fn estimated_cost(job: &JobSpec, rates_mlups: [f64; 3]) -> f64 {
    let [nx, ny, nz] = job.dims;
    let fill = (nz / 4).max(2).min(nz);
    let front_layers = 2.min(nz - fill.min(nz));
    let plane = nx * ny;
    let front = front_layers * plane;
    // Voronoi grain boundaries inside the fill: ~one wall cell per
    // boundary-length unit per layer.
    let solid_interface = (fill * (nx + ny)).min(fill * plane);
    let solid_bulk = fill * plane - solid_interface;
    let liquid_bulk = nz.saturating_sub(fill + front_layers) * plane;
    let counts = RegionCounts {
        solid_bulk,
        liquid_bulk,
        solid_interface,
        front,
    };
    (job.steps.max(1) as f64) * block_weight(&counts, rates_mlups) / 1.0e6
}

/// A planned campaign schedule: job key → owner rank, plus the costs the
/// plan was keyed by (for diagnostics and re-planning after a shrink).
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Owner rank per job key.
    pub assignment: Vec<usize>,
    /// Estimated cost per job key.
    pub costs: Vec<f64>,
}

impl Schedule {
    /// Job keys owned by `rank`, ascending.
    pub fn jobs_of(&self, rank: usize) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == rank)
            .map(|(k, _)| k as u32)
            .collect()
    }

    /// Wire encoding of the assignment (u32 LE per job) for the rank-0
    /// scheduler broadcast.
    pub fn encode(&self) -> Vec<u8> {
        self.assignment
            .iter()
            .flat_map(|&r| (r as u32).to_le_bytes())
            .collect()
    }

    /// Decode a broadcast assignment; `costs` are recomputed by the
    /// receiver (pure function of the job list).
    pub fn decode(bytes: &[u8], costs: Vec<f64>) -> Self {
        let assignment = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect();
        Self { assignment, costs }
    }
}

/// Plan the campaign over the given alive ranks: LPT placement of the
/// estimated costs. Deterministic: a pure function of `(jobs, rates,
/// ranks)` with the tie-break rules of `assign_lpt` (equal costs → lowest
/// job key first; equal loads → earliest rank in `ranks`).
pub fn plan(jobs: &[JobSpec], rates_mlups: [f64; 3], ranks: &[usize]) -> Schedule {
    let costs: Vec<f64> = jobs
        .iter()
        .map(|j| estimated_cost(j, rates_mlups))
        .collect();
    let assignment = assign_lpt_over(&costs, ranks);
    Schedule { assignment, costs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;
    use eutectica_core::params::ModelParams;
    use eutectica_core::regions::DEFAULT_REGION_RATES;

    fn jobs() -> Vec<JobSpec> {
        let mut s = CampaignSpec::around(
            ModelParams::ag_al_cu(),
            [8, 8, 12],
            6,
            vec![1, 2, 3, 4, 5, 6, 7, 8],
        );
        s.velocities = vec![0.01, 0.02];
        s.expand().unwrap()
    }

    #[test]
    fn plan_is_deterministic_and_covers_all_ranks() {
        let jobs = jobs();
        let ranks = vec![0, 1, 2, 3];
        let a = plan(&jobs, DEFAULT_REGION_RATES, &ranks);
        let b = plan(&jobs, DEFAULT_REGION_RATES, &ranks);
        assert_eq!(a, b);
        assert_eq!(a.assignment.len(), jobs.len());
        for r in &ranks {
            assert!(!a.jobs_of(*r).is_empty(), "rank {r} got no jobs");
        }
        // Wire round-trip.
        let dec = Schedule::decode(&a.encode(), a.costs.clone());
        assert_eq!(dec, a);
    }

    #[test]
    fn uniform_jobs_spread_evenly() {
        let jobs = jobs(); // 16 identical-cost jobs
        let s = plan(&jobs, DEFAULT_REGION_RATES, &[0, 1, 2, 3]);
        for r in 0..4 {
            assert_eq!(s.jobs_of(r).len(), 4, "{:?}", s.assignment);
        }
    }

    #[test]
    fn zero_step_jobs_have_positive_cost() {
        let mut spec = CampaignSpec::around(ModelParams::ag_al_cu(), [8, 8, 12], 0, vec![1]);
        spec.steps = 0;
        let jobs = spec.expand().unwrap();
        assert!(estimated_cost(&jobs[0], DEFAULT_REGION_RATES) > 0.0);
    }
}
