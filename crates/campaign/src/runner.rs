//! The campaign runner: round-robin co-stepping of resident jobs, job-keyed
//! progress streaming to a collector rank, per-job isolated recovery, and
//! shrink-and-continue adoption of a dead rank's jobs.
//!
//! # Protocol
//!
//! 1. Every rank expands the spec (deterministic) and computes the LPT
//!    schedule locally; the lowest alive rank (the *scheduler/collector*)
//!    broadcasts its assignment as the single source of truth.
//! 2. The run proceeds in *rounds*. Each round, a rank steps every
//!    resident active job one slice (round-robin), then streams one
//!    progress message per resident job to the collector on that job's
//!    own comm tag ([`eutectica_comm::campaign_tag`]) — the
//!    exchange-partitioned routing idiom: the tag is the key, no payload
//!    demultiplexing. The round ends with an allreduce of the remaining
//!    active-job count; the campaign is over when it reaches zero.
//! 3. A rank death surfaces as a [`CommError`] somewhere in the round.
//!    Survivors run a membership round, deterministically re-plan the
//!    dead ranks' jobs over the survivor set (LPT again, same tie-breaks)
//!    and adopt them from their per-job checkpoint namespaces — a job
//!    with no usable set restarts from its initial condition, which lands
//!    on the identical trajectory.
//!
//! # Isolation guarantees
//!
//! Each job owns its checkpoint namespace (`<root>/job_<key>/`), health
//! monitor, fault plan, and rollback budget. A NaN rollback, a failed
//! job, or an adopted orphan never touches a sibling's `Simulation` —
//! the bit-identity property tests pin this.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use eutectica_blockgrid::balance::assign_lpt_over;
use eutectica_comm::{campaign_tag, catch_comm, CommError, Rank};
use eutectica_core::health::{self, FieldFaultPlan, HealthMonitor, HealthReport};
use eutectica_core::init;
use eutectica_core::solver::Simulation;
use eutectica_core::state::BlockState;
use eutectica_core::sweep_pool::SweepPool;
use eutectica_core::{N_COMP, N_PHASES};
use eutectica_obsv::{FrameBus, JobRecord};
use eutectica_pfio::ckpt::{Precision, DEFAULT_BYTE_BUDGET};
use eutectica_pfio::jobs as jobckpt;
use eutectica_pfio::resilient::{RecoveryPolicy, ShrinkPolicy};
use eutectica_telemetry::Telemetry;

use crate::sched::{self, Schedule};
use crate::spec::{CampaignError, CampaignSpec, JobSpec};

/// Execution options of [`run_campaign`].
#[derive(Clone)]
pub struct CampaignOpts {
    /// Sweep-pool threads per rank, shared by all resident jobs (1 =
    /// serial; threaded stepping is bit-identical to serial).
    pub threads: usize,
    /// Steps each active job advances per round before the rank moves to
    /// its next resident job.
    pub slice_steps: usize,
    /// Campaign checkpoint root; every job gets its own namespace below
    /// it. `None` disables checkpoints (and with them rollback and
    /// checkpoint-based adoption).
    pub ckpt_root: Option<PathBuf>,
    /// Per-job checkpoint cadence in steps (0 = no cadence checkpoints).
    pub ckpt_every: usize,
    /// Checkpoint sets retained per job namespace.
    pub keep_sets: usize,
    /// Per-job silent-corruption recovery: health-scan config and the
    /// rollback budget (each job gets its *own* budget). The policy's
    /// `field_fault_plans` are ignored — use [`CampaignOpts::job_faults`]
    /// to target a specific job.
    pub recovery: RecoveryPolicy,
    /// Deterministic per-job fault injection for tests/chaos drills.
    pub job_faults: BTreeMap<u32, FieldFaultPlan>,
    /// Rank-death survival: `Some` adopts dead ranks' jobs onto survivors
    /// (up to `max_shrinks` deaths); `None` escalates the comm error.
    pub shrink: Option<ShrinkPolicy>,
    /// Per-region kernel rates (interface/liquid/solid MLUP/s) keying the
    /// scheduler's cost estimates — autotuner measurements or the
    /// defaults.
    pub rates: [f64; 3],
    /// Observability bus for `{"type":"job"}` frames (collector only).
    pub bus: Option<Arc<FrameBus>>,
    /// Telemetry collector for campaign counters and per-job lanes.
    pub telemetry: Telemetry,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        Self {
            threads: 1,
            slice_steps: 8,
            ckpt_root: None,
            ckpt_every: 0,
            keep_sets: 2,
            recovery: RecoveryPolicy::default(),
            job_faults: BTreeMap::new(),
            shrink: None,
            rates: eutectica_core::regions::DEFAULT_REGION_RATES,
            bus: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Terminal status of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Still stepping.
    Active,
    /// Reached its step budget.
    Done,
    /// Dropped from the fleet with a reason (rollback budget exhausted,
    /// no rollback target, …). Siblings are unaffected.
    Failed(String),
}

impl JobStatus {
    fn wire(&self) -> u8 {
        match self {
            Self::Active => 0,
            Self::Done => 1,
            Self::Failed(_) => 2,
        }
    }

    /// Wire/display name of the status (`active`/`done`/`failed`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Active => "active",
            Self::Done => "done",
            Self::Failed(_) => "failed",
        }
    }
}

/// FNV-1a 64 over the interior field bits — the per-job result checksum
/// streamed to the collector and compared across recovery paths.
pub fn field_checksum(state: &BlockState) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: f64| {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let d = state.dims;
    for c in 0..N_PHASES {
        for (x, y, z) in d.interior_iter() {
            eat(state.phi_src.at(c, x, y, z));
        }
    }
    for c in 0..N_COMP {
        for (x, y, z) in d.interior_iter() {
            eat(state.mu_src.at(c, x, y, z));
        }
    }
    h
}

/// One job resident on this rank.
struct ResidentJob {
    spec: JobSpec,
    sim: Simulation,
    monitor: Option<HealthMonitor>,
    rollbacks: u64,
    status: JobStatus,
    checksum: u64,
}

impl ResidentJob {
    fn finish_if_due(&mut self) {
        if self.status == JobStatus::Active && self.sim.steps() >= self.spec.steps {
            self.checksum = field_checksum(&self.sim.state);
            self.status = JobStatus::Done;
        }
    }
}

/// Final state of a job that finished resident on this rank (fields
/// included, so tests can compare byte-for-byte against references).
pub struct LocalJobResult {
    /// Job key.
    pub key: u32,
    /// Final source fields.
    pub state: BlockState,
    /// Completed steps.
    pub steps: usize,
    /// Final simulation time.
    pub time: f64,
    /// Rollbacks consumed.
    pub rollbacks: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// [`field_checksum`] of the final fields.
    pub checksum: u64,
}

/// Fleet-wide view assembled on the collector rank.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Final [`JobRecord`] per job, ascending key.
    pub jobs: Vec<JobRecord>,
    /// Job keys in completion order — `(round, key)`-sorted, a pure
    /// function of the spec + schedule when no faults fire.
    pub completion_order: Vec<u32>,
}

/// Per-rank outcome of [`run_campaign`].
pub struct CampaignReport {
    /// Fleet summary — `Some` only on the collector (lowest alive rank).
    pub fleet: Option<FleetSummary>,
    /// This rank's resident jobs with final fields.
    pub local: Vec<LocalJobResult>,
    /// Initial job→rank assignment (before any shrink).
    pub assignment: Vec<usize>,
    /// Progress rounds executed.
    pub rounds: u64,
    /// Rank deaths absorbed.
    pub shrinks: usize,
}

/// Wire form of one per-job progress message (fixed-size little-endian).
const PROGRESS_BYTES: usize = 4 + 8 + 8 + 8 + 1 + 8 + 8;

fn encode_progress(key: u32, round: u64, job: &ResidentJob) -> Bytes {
    let mut b = Vec::with_capacity(PROGRESS_BYTES);
    b.extend_from_slice(&key.to_le_bytes());
    b.extend_from_slice(&round.to_le_bytes());
    b.extend_from_slice(&(job.sim.steps() as u64).to_le_bytes());
    b.extend_from_slice(&(job.spec.steps as u64).to_le_bytes());
    b.push(job.status.wire());
    b.extend_from_slice(&job.rollbacks.to_le_bytes());
    b.extend_from_slice(&job.checksum.to_le_bytes());
    Bytes::from(b)
}

/// Decoded progress message.
struct Progress {
    key: u32,
    round: u64,
    step: u64,
    steps_total: u64,
    status: u8,
    rollbacks: u64,
    checksum: u64,
}

fn decode_progress(b: &[u8]) -> Progress {
    assert_eq!(b.len(), PROGRESS_BYTES, "malformed campaign progress frame");
    let u32le = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    let u64le = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
    Progress {
        key: u32le(0),
        round: u64le(4),
        step: u64le(12),
        steps_total: u64le(20),
        status: b[28],
        rollbacks: u64le(29),
        checksum: u64le(37),
    }
}

/// Collector-side rolling view of one job.
#[derive(Clone)]
struct JobTrack {
    record: JobRecord,
    completed_round: Option<u64>,
}

/// Run a campaign on this rank. Call from every rank of the universe; the
/// collector (lowest alive rank) returns the fleet summary, every rank
/// returns its resident jobs' final fields.
pub fn run_campaign(
    rank: &Rank,
    spec: &CampaignSpec,
    opts: &CampaignOpts,
) -> Result<CampaignReport, CampaignError> {
    let jobs = spec.expand()?;
    let tel = &opts.telemetry;
    let mut alive = rank.alive_ranks();
    let mut schedule = sched::plan(&jobs, opts.rates, &alive);

    // Scheduler broadcast: the collector's plan is the source of truth
    // (every rank computed the same one; the broadcast pins it).
    let confirmed = catch_comm(|| rank.broadcast(alive[0], Bytes::from(schedule.encode())));
    let mut shrinks = 0usize;
    let mut deaths = 0usize;
    match confirmed {
        Ok(bytes) => schedule = Schedule::decode(&bytes, schedule.costs.clone()),
        Err(e) => {
            // A death raced the handshake: recover, then re-plan over the
            // survivors from scratch (nothing is resident yet).
            let change = membership_round(rank, opts, &mut deaths, &e)?;
            alive = change;
            shrinks += 1;
            schedule = sched::plan(&jobs, opts.rates, &alive);
        }
    }
    let initial_assignment = schedule.assignment.clone();

    // Build resident jobs.
    let me = rank.rank();
    let mut residents: BTreeMap<u32, ResidentJob> = BTreeMap::new();
    for key in schedule.jobs_of(me) {
        let r = make_resident(&jobs[key as usize], opts)?;
        residents.insert(key, r);
    }
    tel.gauge_set("campaign/resident_jobs", residents.len() as f64);

    // A single sweep pool shared by every resident job on this rank.
    let mut pool = (opts.threads > 1).then(|| SweepPool::new(opts.threads));

    let mut fleet: BTreeMap<u32, JobTrack> = BTreeMap::new();
    let mut round: u64 = 0;
    loop {
        round += 1;
        rank.fault_step(round); // arm scheduled rank kills (chaos drills)
        let outcome = catch_comm(|| -> Result<u64, CampaignError> {
            // 1. Round-robin: one slice per resident active job.
            for (key, job) in residents.iter_mut() {
                step_slice(*key, job, opts, &mut pool)?;
            }
            // 2. Job-keyed progress streaming to the collector.
            let collector = alive[0];
            if me == collector {
                // Post all receives first, then drain in key order.
                let reqs: Vec<_> = schedule
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &owner)| owner != me && alive.contains(&owner))
                    .map(|(k, &owner)| rank.irecv(owner, campaign_tag(k as u32)))
                    .collect();
                let mut frames: Vec<Progress> = residents
                    .iter()
                    .map(|(k, j)| decode_progress(&encode_progress(*k, round, j)))
                    .collect();
                for req in reqs {
                    frames.push(decode_progress(&rank.wait(req)));
                }
                frames.sort_by_key(|p| p.key);
                collect_frames(&frames, &jobs, &schedule, &mut fleet, opts, round);
            } else {
                for (key, job) in residents.iter() {
                    rank.send(
                        collector,
                        campaign_tag(*key),
                        encode_progress(*key, round, job),
                    );
                }
            }
            // 3. Fleet-wide termination check.
            let active = residents
                .values()
                .filter(|j| j.status == JobStatus::Active)
                .count() as u64;
            Ok(rank.allreduce_u64s(&[active])[0])
        });
        match outcome {
            Ok(Ok(0)) => break,
            Ok(Ok(_)) => {}
            Ok(Err(e)) => return Err(e),
            Err(comm_err) => {
                // A rank died somewhere in the round: shrink and adopt.
                let change = membership_round(rank, opts, &mut deaths, &comm_err)?;
                shrinks += 1;
                tel.counter_add("campaign/shrinks", 1);
                adopt_orphans(&jobs, &mut schedule, &change, &mut residents, opts, me)?;
                alive = change;
                tel.gauge_set("campaign/resident_jobs", residents.len() as f64);
            }
        }
    }

    let local = residents
        .into_iter()
        .map(|(key, j)| LocalJobResult {
            key,
            steps: j.sim.steps(),
            time: j.sim.time(),
            rollbacks: j.rollbacks,
            checksum: j.checksum,
            status: j.status,
            state: j.sim.state,
        })
        .collect();
    let fleet_summary = (me == alive[0]).then(|| {
        let mut order: Vec<(u64, u32)> = fleet
            .values()
            .filter_map(|t| t.completed_round.map(|r| (r, t.record.job)))
            .collect();
        order.sort_unstable();
        FleetSummary {
            jobs: fleet.values().map(|t| t.record.clone()).collect(),
            completion_order: order.into_iter().map(|(_, k)| k).collect(),
        }
    });
    Ok(CampaignReport {
        fleet: fleet_summary,
        local,
        assignment: initial_assignment,
        rounds: round,
        shrinks,
    })
}

/// One membership round under the shrink policy: agree on survivors,
/// enforce the death budget. Retries internally when another death races
/// the round itself.
fn membership_round(
    rank: &Rank,
    opts: &CampaignOpts,
    deaths: &mut usize,
    trigger: &CommError,
) -> Result<Vec<usize>, CampaignError> {
    let Some(policy) = &opts.shrink else {
        return Err(CampaignError::Comm(format!(
            "rank death without a shrink policy: {trigger}"
        )));
    };
    loop {
        match catch_comm(|| rank.recover_membership()) {
            Ok(Ok(Some(change))) => {
                *deaths += change.newly_dead.len();
                opts.telemetry.set_epoch(change.epoch);
                if *deaths > policy.max_shrinks {
                    return Err(CampaignError::ShrinkExhausted {
                        budget: policy.max_shrinks,
                        deaths: *deaths,
                    });
                }
                return Ok(change.alive);
            }
            Ok(Ok(None)) => {
                return Err(CampaignError::Comm(format!(
                    "comm failure without a membership change: {trigger}"
                )));
            }
            // A further death raced the round; run another one.
            Ok(Err(_)) | Err(_) => continue,
        }
    }
}

/// Deterministically re-home jobs owned by dead ranks onto the survivors
/// and (on the adopting rank) restore them from their own checkpoint
/// namespaces. Surviving ranks' residents are untouched.
fn adopt_orphans(
    jobs: &[JobSpec],
    schedule: &mut Schedule,
    alive: &[usize],
    residents: &mut BTreeMap<u32, ResidentJob>,
    opts: &CampaignOpts,
    me: usize,
) -> Result<(), CampaignError> {
    let orphans: Vec<u32> = schedule
        .assignment
        .iter()
        .enumerate()
        .filter(|&(_, owner)| !alive.contains(owner))
        .map(|(k, _)| k as u32)
        .collect();
    if orphans.is_empty() {
        return Ok(());
    }
    // LPT over the orphans' estimated costs, survivors only — replicated
    // arithmetic, every survivor computes the identical adoption map.
    let costs: Vec<f64> = orphans
        .iter()
        .map(|&k| schedule.costs[k as usize])
        .collect();
    let new_owner = assign_lpt_over(&costs, alive);
    for (&key, &owner) in orphans.iter().zip(&new_owner) {
        schedule.assignment[key as usize] = owner;
        if owner == me {
            let mut r = make_resident(&jobs[key as usize], opts)?;
            // Resume from the orphan's own namespace when it has one; a
            // checkpoint-less orphan restarts from init on the identical
            // trajectory.
            if let Some(root) = &opts.ckpt_root {
                match jobckpt::restore_job_latest(root, key, DEFAULT_BYTE_BUDGET) {
                    Ok(Some(restore)) => {
                        r.sim.state = restore.state;
                        r.sim.state.apply_bc_src();
                        r.sim.set_progress(
                            restore.progress.time,
                            restore.progress.step as usize,
                            restore.progress.window_shifts as usize,
                        );
                        if let Some(m) = &mut r.monitor {
                            m.on_progress_reset();
                        }
                        r.finish_if_due();
                    }
                    Ok(None) => {}
                    Err(e) => return Err(CampaignError::Ckpt(e.to_string())),
                }
            }
            opts.telemetry.counter_add("campaign/jobs_adopted", 1);
            residents.insert(key, r);
        }
    }
    Ok(())
}

/// Build the initialized standalone [`Simulation`] of one job: the exact
/// construction the campaign runner uses for a resident job, so "same
/// point, run alone" and "same point, inside a fleet" start from identical
/// bits — the isolation property tests step this directly as the
/// reference trajectory.
pub fn standalone_sim(spec: &JobSpec) -> Result<Simulation, CampaignError> {
    let mut sim = Simulation::new(spec.params(), spec.dims).map_err(|reason| {
        CampaignError::InvalidPoint {
            label: spec.label(),
            reason,
        }
    })?;
    sim.set_telemetry(Telemetry::disabled());
    let d = sim.state.dims;
    let csum: f64 = spec.composition.iter().sum();
    let fractions = spec.composition.map(|c| c / csum);
    let seeds = init::VoronoiSeeds::generate(
        [d.nx, d.ny],
        init::default_seed_count(d.nx, d.ny),
        fractions,
        spec.seed,
    );
    let fill = (d.nz / 4).max(2);
    init::init_directional_block(&mut sim.state, &seeds, fill);
    Ok(sim)
}

/// Build a freshly initialized resident job.
fn make_resident(spec: &JobSpec, opts: &CampaignOpts) -> Result<ResidentJob, CampaignError> {
    let sim = standalone_sim(spec)?;
    let monitor = opts.recovery.health.map(|cfg| {
        let m = HealthMonitor::new(cfg);
        match opts.job_faults.get(&spec.key) {
            Some(plan) => m.with_faults(plan.clone()),
            None => m,
        }
    });
    let mut job = ResidentJob {
        spec: spec.clone(),
        sim,
        monitor,
        rollbacks: 0,
        status: JobStatus::Active,
        checksum: 0,
    };
    job.finish_if_due(); // zero-step jobs complete immediately
    Ok(job)
}

/// Advance one job by one round-robin slice, interleaving fault injection,
/// health scans with per-job rollback, and checkpoint cadence.
fn step_slice(
    key: u32,
    job: &mut ResidentJob,
    opts: &CampaignOpts,
    pool: &mut Option<SweepPool>,
) -> Result<(), CampaignError> {
    if job.status != JobStatus::Active {
        return Ok(());
    }
    let lane = opts.telemetry.lane(&format!("campaign/job/{key}"));
    if let Some(p) = pool.take() {
        job.sim.set_pool(p);
    }
    let mut stepped = 0;
    while stepped < opts.slice_steps && job.status == JobStatus::Active {
        if job.sim.steps() >= job.spec.steps {
            break;
        }
        // Fault injection scheduled for the step about to run.
        if let Some(m) = &mut job.monitor {
            for f in m.due_faults(job.sim.steps() as u64) {
                health::apply_fault(&mut job.sim.state, &f);
                lane.counter_add("faults_injected", 1);
            }
        }
        job.sim.step();
        stepped += 1;
        lane.counter_add("steps", 1);
        let s = job.sim.steps();
        // Health scan (job-local; a single-block job needs no collective).
        let mut unhealthy = None;
        if let Some(m) = &mut job.monitor {
            if m.due(s) {
                let stats = health::scan_block(&job.sim.state, &m.cfg, u64::from(key));
                let report = HealthReport {
                    step: s,
                    global: stats.counts(),
                    local: stats,
                    front: None,
                    front_ok: true,
                };
                m.record(report);
                unhealthy = m.take_unhealthy();
            }
        }
        if let Some(bad) = unhealthy {
            rollback_job(key, job, opts, &bad)?;
            lane.counter_add("rollbacks", 1);
            continue;
        }
        // Checkpoint cadence — after the scan, so a caught corruption is
        // rolled back instead of persisted.
        if opts.ckpt_every > 0 && s % opts.ckpt_every == 0 {
            if let Some(root) = &opts.ckpt_root {
                let progress = jobckpt::JobProgress {
                    step: s as u64,
                    time: job.sim.time(),
                    window_shifts: job.sim.window_shifts() as u64,
                };
                jobckpt::write_job_checkpoint(root, key, &job.sim.state, progress, Precision::F64)
                    .map_err(|e| CampaignError::Ckpt(e.to_string()))?;
                jobckpt::prune_job_checkpoints(root, key, opts.keep_sets.max(1))
                    .map_err(|e| CampaignError::Ckpt(e.to_string()))?;
                lane.counter_add("checkpoints", 1);
            }
        }
    }
    job.finish_if_due();
    *pool = job.sim.take_pool();
    Ok(())
}

/// Roll one job back to its newest healthy checkpoint, consuming a unit of
/// its (and only its) rollback budget; exhaustion or a missing target
/// fails the job without touching siblings.
fn rollback_job(
    key: u32,
    job: &mut ResidentJob,
    opts: &CampaignOpts,
    report: &HealthReport,
) -> Result<(), CampaignError> {
    if job.rollbacks >= opts.recovery.max_rollbacks as u64 {
        job.status = JobStatus::Failed(format!(
            "rollback budget exhausted ({}): {}",
            opts.recovery.max_rollbacks,
            report.describe()
        ));
        return Ok(());
    }
    let Some(root) = &opts.ckpt_root else {
        job.status = JobStatus::Failed(format!(
            "unhealthy with no checkpoint root: {}",
            report.describe()
        ));
        return Ok(());
    };
    match jobckpt::restore_job_latest(root, key, DEFAULT_BYTE_BUDGET) {
        Ok(Some(restore)) => {
            job.sim.state = restore.state;
            job.sim.state.apply_bc_src();
            job.sim.set_progress(
                restore.progress.time,
                restore.progress.step as usize,
                restore.progress.window_shifts as usize,
            );
            if let Some(m) = &mut job.monitor {
                m.on_progress_reset();
            }
            job.rollbacks += 1;
            Ok(())
        }
        Ok(None) => {
            job.status = JobStatus::Failed(format!("no rollback target: {}", report.describe()));
            Ok(())
        }
        Err(e) => Err(CampaignError::Ckpt(e.to_string())),
    }
}

/// Collector-side: fold one round's progress frames into the fleet view,
/// publish `{"type":"job"}` NDJSON frames, and stamp completion rounds.
fn collect_frames(
    frames: &[Progress],
    jobs: &[JobSpec],
    schedule: &Schedule,
    fleet: &mut BTreeMap<u32, JobTrack>,
    opts: &CampaignOpts,
    round: u64,
) {
    for p in frames {
        debug_assert_eq!(p.round, round, "stale campaign progress frame");
        let status = match p.status {
            0 => "active",
            1 => "done",
            _ => "failed",
        };
        let record = JobRecord {
            job: p.key,
            label: jobs[p.key as usize].label(),
            rank: schedule.assignment[p.key as usize] as u64,
            round,
            step: p.step,
            steps_total: p.steps_total,
            rollbacks: p.rollbacks,
            status: status.into(),
            checksum: p.checksum,
        };
        let entry = fleet.entry(p.key).or_insert_with(|| JobTrack {
            record: record.clone(),
            completed_round: None,
        });
        entry.record = record;
        if p.status != 0 && entry.completed_round.is_none() {
            entry.completed_round = Some(round);
            opts.telemetry.counter_add("campaign/jobs_completed", 1);
        }
        if let Some(bus) = &opts.bus {
            bus.publish(Arc::from(entry.record.to_json()));
        }
    }
}
