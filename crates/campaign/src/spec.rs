//! Campaign specification: a parameter grid over directional-solidification
//! runs, expanded into a deterministic, densely keyed job list.
//!
//! The spec grammar is a cartesian product over four axes — pulling
//! velocity `v`, thermal gradient `G`, initial composition (Voronoi seed
//! phase fractions), and RNG seed — at a fixed domain size and step
//! budget. Expansion order is fixed (`v` outermost, then `G`, composition,
//! seed), so the job key is a pure function of the spec: every rank
//! expands the identical list without communicating, and a job's key
//! doubles as its comm-tag routing key and checkpoint namespace.

use std::fmt;

use eutectica_core::params::ModelParams;

/// Error type of campaign validation, expansion, and execution.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// A grid axis is empty — the product would contain no jobs.
    EmptyAxis(&'static str),
    /// Two expansion indices name the bit-identical parameter point.
    /// Duplicate points would collide on checkpoint namespaces and comm
    /// tags (and silently double compute), so they are rejected up front.
    DuplicatePoint {
        /// Key of the first occurrence.
        first: u32,
        /// Key of the duplicate.
        second: u32,
        /// Human-readable point label.
        label: String,
    },
    /// A grid point fails `ModelParams::validate`.
    InvalidPoint {
        /// Human-readable point label.
        label: String,
        /// The underlying validation failure.
        reason: String,
    },
    /// A communication failure that shrink recovery was not allowed (or
    /// able) to absorb.
    Comm(String),
    /// More ranks died than the shrink budget covers.
    ShrinkExhausted {
        /// Deaths the policy allowed.
        budget: usize,
        /// Deaths observed.
        deaths: usize,
    },
    /// A per-job checkpoint write or restore failed.
    Ckpt(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyAxis(axis) => write!(f, "campaign axis '{axis}' is empty"),
            Self::DuplicatePoint {
                first,
                second,
                label,
            } => write!(
                f,
                "duplicate parameter point {label} (jobs {first} and {second})"
            ),
            Self::InvalidPoint { label, reason } => {
                write!(f, "invalid parameter point {label}: {reason}")
            }
            Self::Comm(e) => write!(f, "campaign comm failure: {e}"),
            Self::ShrinkExhausted { budget, deaths } => write!(
                f,
                "shrink budget exhausted: {deaths} rank deaths, budget {budget}"
            ),
            Self::Ckpt(e) => write!(f, "job checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// A parameter-sweep campaign over small directional-solidification runs.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Base model parameters; each job overrides `vel_v` and `grad_g`.
    pub base: ModelParams,
    /// Domain size of every job (one block, whole domain).
    pub dims: [usize; 3],
    /// Step budget of every job (0 is legal: the job completes without
    /// stepping — useful for spec dry-runs).
    pub steps: usize,
    /// Pulling-velocity axis (`ModelParams::vel_v`).
    pub velocities: Vec<f64>,
    /// Thermal-gradient axis (`ModelParams::grad_g`).
    pub gradients: Vec<f64>,
    /// Initial-composition axis: Voronoi seed phase fractions (α, β, γ).
    pub compositions: Vec<[f64; 3]>,
    /// RNG-seed axis for the Voronoi nucleation layout.
    pub seeds: Vec<u64>,
}

impl CampaignSpec {
    /// A single-axis spec around `base`: one composition (the eutectic
    /// fractions of `base`), one gradient and velocity (from `base`), and
    /// the given seeds. Extend the other axes field-by-field.
    pub fn around(base: ModelParams, dims: [usize; 3], steps: usize, seeds: Vec<u64>) -> Self {
        let comp = base.sys.eutectic_fractions();
        Self {
            velocities: vec![base.vel_v],
            gradients: vec![base.grad_g],
            compositions: vec![comp],
            seeds,
            base,
            dims,
            steps,
        }
    }

    /// Number of jobs the spec expands to.
    pub fn points(&self) -> usize {
        self.velocities.len() * self.gradients.len() * self.compositions.len() * self.seeds.len()
    }

    /// Expand the grid into the deterministic job list, validating every
    /// point and rejecting duplicates with a typed error.
    pub fn expand(&self) -> Result<Vec<JobSpec>, CampaignError> {
        if self.velocities.is_empty() {
            return Err(CampaignError::EmptyAxis("velocities"));
        }
        if self.gradients.is_empty() {
            return Err(CampaignError::EmptyAxis("gradients"));
        }
        if self.compositions.is_empty() {
            return Err(CampaignError::EmptyAxis("compositions"));
        }
        if self.seeds.is_empty() {
            return Err(CampaignError::EmptyAxis("seeds"));
        }
        let mut jobs = Vec::with_capacity(self.points());
        let mut seen: std::collections::HashMap<PointKey, u32> = std::collections::HashMap::new();
        for &v in &self.velocities {
            for &g in &self.gradients {
                for (ci, &composition) in self.compositions.iter().enumerate() {
                    for &seed in &self.seeds {
                        let key = jobs.len() as u32;
                        let job = JobSpec {
                            key,
                            v,
                            g,
                            composition,
                            comp_index: ci,
                            seed,
                            dims: self.dims,
                            steps: self.steps,
                            base: self.base.clone(),
                        };
                        let pk = job.point_key();
                        if let Some(&first) = seen.get(&pk) {
                            return Err(CampaignError::DuplicatePoint {
                                first,
                                second: key,
                                label: job.label(),
                            });
                        }
                        seen.insert(pk, key);
                        job.validate_point()?;
                        jobs.push(job);
                    }
                }
            }
        }
        Ok(jobs)
    }
}

/// Bit-exact identity of a parameter point (used for duplicate rejection).
type PointKey = (u64, u64, [u64; 3], u64);

/// One expanded job: a parameter point plus its dense key.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Dense expansion index; comm-tag routing key and checkpoint
    /// namespace id.
    pub key: u32,
    /// Pulling velocity of this point.
    pub v: f64,
    /// Thermal gradient of this point.
    pub g: f64,
    /// Voronoi seed phase fractions of this point.
    pub composition: [f64; 3],
    /// Index of `composition` in the spec's axis (for labels).
    pub comp_index: usize,
    /// Nucleation RNG seed of this point.
    pub seed: u64,
    /// Domain size (one block).
    pub dims: [usize; 3],
    /// Step budget.
    pub steps: usize,
    /// Base parameters the overrides apply to.
    pub base: ModelParams,
}

impl JobSpec {
    /// The job's full model parameters (`base` with `vel_v`/`grad_g`
    /// overridden by this point).
    pub fn params(&self) -> ModelParams {
        let mut p = self.base.clone();
        p.vel_v = self.v;
        p.grad_g = self.g;
        p
    }

    /// Human-readable point label, e.g. `v0.0200_g0.0010_c0_s42`.
    pub fn label(&self) -> String {
        format!(
            "v{:.4}_g{:.4}_c{}_s{}",
            self.v, self.g, self.comp_index, self.seed
        )
    }

    /// Point-level validation: finite axis values, a usable composition,
    /// a non-degenerate domain, and the base stability bound.
    pub fn validate_point(&self) -> Result<(), CampaignError> {
        let fail = |reason: String| CampaignError::InvalidPoint {
            label: self.label(),
            reason,
        };
        if !self.v.is_finite() || !self.g.is_finite() {
            return Err(fail("non-finite velocity or gradient".into()));
        }
        let csum: f64 = self.composition.iter().sum();
        if self.composition.iter().any(|c| !c.is_finite() || *c < 0.0) || csum <= 0.0 {
            return Err(fail(format!("unusable composition {:?}", self.composition)));
        }
        if self.dims.iter().any(|&d| d < 2) {
            return Err(fail(format!("degenerate dims {:?}", self.dims)));
        }
        self.params().validate().map_err(fail)
    }

    /// Bit-exact point identity (ignores the key).
    fn point_key(&self) -> PointKey {
        (
            self.v.to_bits(),
            self.g.to_bits(),
            self.composition.map(f64::to_bits),
            self.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> CampaignSpec {
        let mut s = CampaignSpec::around(ModelParams::ag_al_cu(), [8, 8, 12], 4, vec![1, 2]);
        s.velocities = vec![0.01, 0.02];
        s.gradients = vec![0.001, 0.002];
        s
    }

    #[test]
    fn expansion_is_dense_ordered_and_repeatable() {
        let spec = base_spec();
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), spec.points());
        assert_eq!(jobs.len(), 8);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.key as usize, i);
        }
        // Pure function of the spec.
        let again = spec.expand().unwrap();
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.label(), b.label());
            assert_eq!(a.seed, b.seed);
        }
        // v is the outermost axis.
        assert_eq!(jobs[0].v, 0.01);
        assert_eq!(jobs[4].v, 0.02);
    }

    #[test]
    fn empty_axes_and_duplicates_are_typed_errors() {
        let mut spec = base_spec();
        spec.seeds.clear();
        assert!(matches!(
            spec.expand(),
            Err(CampaignError::EmptyAxis("seeds"))
        ));

        let mut spec = base_spec();
        spec.seeds = vec![1, 2, 1];
        match spec.expand() {
            Err(CampaignError::DuplicatePoint { first, second, .. }) => {
                assert_eq!(first, 0);
                assert_eq!(second, 2);
            }
            other => panic!("expected DuplicatePoint, got {other:?}"),
        }
    }

    #[test]
    fn invalid_points_are_rejected_with_their_label() {
        let mut spec = base_spec();
        spec.velocities = vec![0.01, f64::NAN];
        match spec.expand() {
            Err(CampaignError::InvalidPoint { label, .. }) => {
                assert!(label.contains("vNaN"), "{label}");
            }
            other => panic!("expected InvalidPoint, got {other:?}"),
        }
    }
}
