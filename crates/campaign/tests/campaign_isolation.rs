//! Campaign isolation property tests.
//!
//! Property 1 — **fleet transparency**: a job executed inside a co-scheduled
//! campaign is bit-identical to the same parameter point run standalone,
//! for every rank count and thread count. The campaign machinery (slicing,
//! round-robin interleaving, progress streaming, checkpoint cadence,
//! health scans) must be invisible to the physics.
//!
//! Property 2 — **sibling isolation**: corrupting one job (rollback
//! recovery) or killing it outright (budget exhaustion) leaves every other
//! job byte-equal to an undisturbed campaign.

use std::collections::BTreeMap;
use std::path::PathBuf;

use eutectica_campaign::{
    field_checksum, run_campaign, standalone_sim, CampaignOpts, CampaignSpec, JobStatus,
};
use eutectica_comm::Universe;
use eutectica_core::health::{FaultKind, FieldFault, FieldFaultPlan, FieldTarget, HealthConfig};
use eutectica_core::params::ModelParams;
use eutectica_obsv::JobRecord;

/// 32 parameter points: 2 velocities × 2 gradients × 2 compositions ×
/// 4 seeds on a small directional domain.
fn spec_32() -> CampaignSpec {
    let mut s = CampaignSpec::around(ModelParams::ag_al_cu(), [8, 8, 12], 6, vec![1, 2, 3, 4]);
    s.velocities = vec![0.015, 0.02];
    s.gradients = vec![0.001, 0.002];
    s.compositions = vec![[1.0 / 3.0; 3], [0.4, 0.3, 0.3]];
    s
}

/// Small 4-job spec for the recovery-isolation drills.
fn spec_4() -> CampaignSpec {
    CampaignSpec::around(ModelParams::ag_al_cu(), [8, 8, 12], 12, vec![1, 2, 3, 4])
}

fn tmp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "eutectica_campaign_iso_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Run the campaign on `ranks` ranks and merge every rank's local results:
/// key → (checksum, status, rollbacks), plus the collector's fleet records.
#[allow(clippy::type_complexity)]
fn run_fleet(
    spec: CampaignSpec,
    ranks: usize,
    opts: CampaignOpts,
) -> (BTreeMap<u32, (u64, JobStatus, u64)>, Vec<JobRecord>) {
    let out = Universe::run(ranks, move |rank| {
        let report = run_campaign(&rank, &spec, &opts).unwrap();
        let locals: Vec<(u32, u64, JobStatus, u64)> = report
            .local
            .iter()
            .map(|l| (l.key, l.checksum, l.status.clone(), l.rollbacks))
            .collect();
        (locals, report.fleet)
    });
    let mut map = BTreeMap::new();
    let mut fleet = Vec::new();
    for (locals, f) in out {
        for (k, sum, st, rb) in locals {
            assert!(
                map.insert(k, (sum, st, rb)).is_none(),
                "job {k} resident twice"
            );
        }
        if let Some(f) = f {
            assert!(fleet.is_empty(), "two collectors reported a fleet");
            fleet = f.jobs;
        }
    }
    (map, fleet)
}

/// Serial standalone reference checksums, one per job.
fn reference_checksums(spec: &CampaignSpec) -> BTreeMap<u32, u64> {
    spec.expand()
        .unwrap()
        .iter()
        .map(|j| {
            let mut sim = standalone_sim(j).unwrap();
            for _ in 0..j.steps {
                sim.step();
            }
            (j.key, field_checksum(&sim.state))
        })
        .collect()
}

#[test]
fn fleet_jobs_are_bit_identical_to_standalone_across_ranks_and_threads() {
    let spec = spec_32();
    assert_eq!(spec.points(), 32);
    let reference = reference_checksums(&spec);

    for ranks in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            let opts = CampaignOpts {
                threads,
                slice_steps: 2,
                ..CampaignOpts::default()
            };
            let (locals, fleet) = run_fleet(spec.clone(), ranks, opts);
            assert_eq!(locals.len(), 32, "ranks={ranks} threads={threads}");
            for (key, (sum, status, rollbacks)) in &locals {
                assert_eq!(*status, JobStatus::Done, "job {key}");
                assert_eq!(*rollbacks, 0, "job {key}");
                assert_eq!(
                    *sum, reference[key],
                    "job {key} diverged from standalone at ranks={ranks} threads={threads}"
                );
            }
            // The collector's fleet view carries the same checksums.
            assert_eq!(fleet.len(), 32);
            for rec in &fleet {
                assert_eq!(rec.status, "done");
                assert_eq!(rec.step, rec.steps_total);
                assert_eq!(
                    rec.checksum, reference[&rec.job],
                    "collector checksum for job {} ranks={ranks} threads={threads}",
                    rec.job
                );
            }
        }
    }
}

/// A transient field fault rolled back from a per-job checkpoint rejoins
/// the undisturbed trajectory bit-exactly, and siblings never notice.
#[test]
fn rollback_recovery_is_bit_exact_and_leaves_siblings_untouched() {
    let spec = spec_4();
    let health = HealthConfig::for_params(&spec.base).with_every(2);
    let base_opts = |root: PathBuf| {
        let mut opts = CampaignOpts {
            slice_steps: 3,
            ckpt_root: Some(root),
            ckpt_every: 2,
            keep_sets: 3,
            ..CampaignOpts::default()
        };
        opts.recovery.health = Some(health);
        opts.recovery.max_rollbacks = 2;
        opts
    };

    // Undisturbed baseline.
    let root_a = tmp_root("clean");
    let (clean, _) = run_fleet(spec.clone(), 2, base_opts(root_a.clone()));
    for (key, (_, status, rollbacks)) in &clean {
        assert_eq!(*status, JobStatus::Done, "job {key}");
        assert_eq!(*rollbacks, 0);
    }

    // Same campaign, but job 2 takes a NaN upset before step 6: checkpoints
    // exist at steps 2 and 4, the scan at step 6 detects, the job rolls
    // back to step 4 and re-runs clean (fire-once fault).
    let root_b = tmp_root("fault");
    let mut opts = base_opts(root_b.clone());
    opts.job_faults.insert(
        2,
        FieldFaultPlan::new(7).inject(FieldFault {
            step: 5,
            block: 2,
            cell: [3, 2, 1],
            target: FieldTarget::Phi(0),
            kind: FaultKind::Nan,
        }),
    );
    let (faulted, _) = run_fleet(spec.clone(), 2, opts);
    assert_eq!(faulted.len(), clean.len());
    for (key, (sum, status, rollbacks)) in &faulted {
        assert_eq!(*status, JobStatus::Done, "job {key}");
        let expected_rollbacks = if *key == 2 { 1 } else { 0 };
        assert_eq!(*rollbacks, expected_rollbacks, "job {key}");
        assert_eq!(
            *sum, clean[key].0,
            "job {key} diverged from the undisturbed campaign"
        );
    }

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

/// Exhausting one job's rollback budget fails that job only: the rest of
/// the fleet completes byte-equal to the undisturbed campaign.
#[test]
fn budget_exhaustion_fails_one_job_without_perturbing_the_fleet() {
    let spec = spec_4();
    let health = HealthConfig::for_params(&spec.base).with_every(2);

    let root_a = tmp_root("exh_clean");
    let mut clean_opts = CampaignOpts {
        slice_steps: 3,
        ckpt_root: Some(root_a.clone()),
        ckpt_every: 2,
        keep_sets: 3,
        ..CampaignOpts::default()
    };
    clean_opts.recovery.health = Some(health);
    clean_opts.recovery.max_rollbacks = 2;
    let (clean, _) = run_fleet(spec.clone(), 2, clean_opts);

    let root_b = tmp_root("exh_fault");
    let mut opts = CampaignOpts {
        slice_steps: 3,
        ckpt_root: Some(root_b.clone()),
        ckpt_every: 2,
        keep_sets: 3,
        ..CampaignOpts::default()
    };
    opts.recovery.health = Some(health);
    opts.recovery.max_rollbacks = 0; // no budget: first upset is fatal
    opts.job_faults.insert(
        1,
        FieldFaultPlan::new(9).inject(FieldFault {
            step: 5,
            block: 1,
            cell: [1, 1, 2],
            target: FieldTarget::Mu(0),
            kind: FaultKind::Nan,
        }),
    );
    let (faulted, fleet) = run_fleet(spec.clone(), 2, opts);
    assert_eq!(faulted.len(), clean.len());
    for (key, (sum, status, _)) in &faulted {
        if *key == 1 {
            assert!(
                matches!(status, JobStatus::Failed(reason) if reason.contains("budget")),
                "job 1 should fail on budget, got {status:?}"
            );
        } else {
            assert_eq!(*status, JobStatus::Done, "job {key}");
            assert_eq!(
                *sum, clean[key].0,
                "job {key} perturbed by a sibling's failure"
            );
        }
    }
    // The collector sees the failure too; the fleet still terminated.
    let failed: Vec<u32> = fleet
        .iter()
        .filter(|r| r.status == "failed")
        .map(|r| r.job)
        .collect();
    assert_eq!(failed, vec![1]);

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}
