//! Deterministic-scheduling property tests plus adversarial campaign
//! shapes: the same spec and seed set must produce the identical
//! assignment and completion-order metadata on every run, and degenerate
//! fleets (one job, many more jobs than rank slots, zero-step jobs,
//! duplicate points) must behave predictably.

use std::collections::BTreeMap;

use eutectica_campaign::{
    field_checksum, run_campaign, standalone_sim, CampaignError, CampaignOpts, CampaignSpec,
    JobStatus,
};
use eutectica_comm::Universe;
use eutectica_core::params::ModelParams;

fn spec_with_seeds(n_seeds: u64, steps: usize) -> CampaignSpec {
    CampaignSpec::around(
        ModelParams::ag_al_cu(),
        [8, 8, 12],
        steps,
        (1..=n_seeds).collect(),
    )
}

/// One full campaign run: (initial assignment, completion order, per-job
/// final records as (status name, checksum)).
#[allow(clippy::type_complexity)]
fn run_once(
    spec: &CampaignSpec,
    ranks: usize,
) -> (Vec<usize>, Vec<u32>, BTreeMap<u32, (String, u64)>) {
    let spec = spec.clone();
    let out = Universe::run(ranks, move |rank| {
        let report = run_campaign(&rank, &spec, &CampaignOpts::default()).unwrap();
        (report.assignment, report.fleet)
    });
    let mut assignment = Vec::new();
    let mut order = Vec::new();
    let mut records = BTreeMap::new();
    for (a, fleet) in out {
        assignment = a; // identical on every rank (broadcast-confirmed)
        if let Some(f) = fleet {
            order = f.completion_order;
            for r in f.jobs {
                records.insert(r.job, (r.status, r.checksum));
            }
        }
    }
    (assignment, order, records)
}

#[test]
fn same_spec_and_seed_produce_identical_schedule_and_completion_order() {
    let mut spec = spec_with_seeds(4, 6);
    spec.velocities = vec![0.015, 0.02];
    spec.gradients = vec![0.001, 0.002];

    let (a1, o1, r1) = run_once(&spec, 4);
    let (a2, o2, r2) = run_once(&spec, 4);
    assert_eq!(a1, a2, "assignment must be a pure function of the spec");
    assert_eq!(o1, o2, "completion order must be deterministic");
    assert_eq!(r1, r2, "per-job records must be deterministic");
    assert_eq!(o1.len(), spec.points(), "every job completes exactly once");
    // Every rank owns at least one of the 16 jobs.
    for rank in 0..4 {
        assert!(a1.contains(&rank), "rank {rank} got no jobs");
    }
}

#[test]
fn single_job_campaign_completes_with_idle_ranks() {
    let spec = spec_with_seeds(1, 4);
    let (assignment, order, records) = run_once(&spec, 4);
    assert_eq!(assignment.len(), 1);
    assert_eq!(order, vec![0]);
    assert_eq!(records.len(), 1);
    assert_eq!(records[&0].0, "done");

    // The lone job is still bit-identical to standalone.
    let job = &spec.expand().unwrap()[0];
    let mut sim = standalone_sim(job).unwrap();
    for _ in 0..job.steps {
        sim.step();
    }
    assert_eq!(records[&0].1, field_checksum(&sim.state));
}

#[test]
fn oversubscribed_fleet_completes_every_job() {
    // 24 jobs on 2 ranks: more jobs than ranks × 8.
    let spec = spec_with_seeds(24, 3);
    let (assignment, order, records) = run_once(&spec, 2);
    assert_eq!(assignment.len(), 24);
    assert_eq!(order.len(), 24);
    assert_eq!(records.len(), 24);
    for (job, (status, _)) in &records {
        assert_eq!(status, "done", "job {job}");
    }
    // LPT spreads uniform jobs evenly across both ranks.
    assert_eq!(assignment.iter().filter(|&&r| r == 0).count(), 12);
    assert_eq!(assignment.iter().filter(|&&r| r == 1).count(), 12);
}

#[test]
fn zero_step_jobs_complete_immediately_with_init_checksums() {
    let spec = spec_with_seeds(6, 0);
    let (_, order, records) = run_once(&spec, 2);
    assert_eq!(order.len(), 6);
    for job in spec.expand().unwrap() {
        let (status, checksum) = &records[&job.key];
        assert_eq!(status, "done");
        // Final state is exactly the initial condition.
        let sim = standalone_sim(&job).unwrap();
        assert_eq!(*checksum, field_checksum(&sim.state), "job {}", job.key);
    }
}

#[test]
fn duplicate_points_are_rejected_with_a_typed_error_on_every_rank() {
    let mut spec = spec_with_seeds(3, 4);
    spec.seeds = vec![5, 9, 5];
    let results = Universe::run(2, move |rank| {
        match run_campaign(&rank, &spec, &CampaignOpts::default()) {
            Err(CampaignError::DuplicatePoint { first, second, .. }) => (first, second),
            Err(e) => panic!("expected DuplicatePoint, got {e}"),
            Ok(_) => panic!("expected DuplicatePoint, got success"),
        }
    });
    for (first, second) in results {
        assert_eq!((first, second), (0, 2));
    }
}

#[test]
fn statuses_expose_stable_names() {
    assert_eq!(JobStatus::Active.name(), "active");
    assert_eq!(JobStatus::Done.name(), "done");
    assert_eq!(JobStatus::Failed("x".into()).name(), "failed");
}
